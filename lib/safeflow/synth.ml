(** Synthetic core-component generator for the scalability benchmarks
    (experiment B2) and the fleet benchmarks.

    Generates MiniC core components with a configurable number of shared
    regions, worker functions and call-chain depth.  Workers read the
    regions (a configurable fraction through monitoring functions),
    massage the values through local arithmetic and feed a critical
    output; the result is a family of programs whose analysis cost can be
    plotted against size.

    All generation is deterministic: randomness comes from a seeded
    linear-congruential generator (no [Random] state, no host
    dependence), so a (seed, params) pair reproduces the same sources on
    every machine — the property the fleet benchmarks rely on to compare
    BENCH_fleet.json files across hosts.  Seed 0 (the default)
    reproduces the historical unseeded output byte-for-byte. *)

type params = {
  regions : int;        (** shared-memory regions *)
  workers : int;        (** worker functions *)
  chain_depth : int;    (** helpers called under each worker *)
  monitored_fraction : float;  (** fraction of workers that monitor *)
}

let default = { regions = 4; workers = 8; chain_depth = 2; monitored_fraction = 0.5 }

let buf_add = Buffer.add_string

(* -- deterministic PRNG ------------------------------------------------------

   The 48-bit drand48 LCG (fits OCaml's 63-bit ints on every 64-bit
   host).  Not statistically strong — it only has to decorrelate
   generated source constants — but exactly reproducible across hosts
   and OCaml versions, which [Random] does not promise. *)

type rng = { mutable s : int }

let rng_make seed = { s = ((seed * 2654435761) lxor 0x5DEECE66D) land 0xFFFFFFFFFFFF }

let rng_float r =
  r.s <- ((r.s * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  float_of_int ((r.s lsr 22) land 0xFFFFFF) /. 16777216.0

(* Seed-varied arithmetic constant: the default literal under seed 0,
   otherwise a value from [lo, lo+spread) formatted stably.  Constants
   only feed pure local double arithmetic, so varying them changes every
   content digest without changing the taint structure or the findings
   the analysis reports. *)
let const ~(rng : rng option) ~default lo spread =
  match rng with
  | None -> default
  | Some r -> Fmt.str "%.4f" (lo +. (spread *. rng_float r))

(* helper chain for worker [tag]: [chain_depth] pure-arithmetic helpers
   named <prefix>_<tag>_<d>, the worker entry point calling <prefix>_<tag>_0 *)
let emit_helper_chain b ~rng ~prefix ~tag ~depth =
  for d = depth - 1 downto 0 do
    if d = depth - 1 then
      buf_add b
        (Fmt.str
           "double %s_%s_%d(double x)\n{\n  double y = x * %s + %s;\n  int i;\n  for (i = 0; i < 4; i++) {\n    y = y * %s + x * %s;\n  }\n  return y;\n}\n\n"
           prefix tag d
           (const ~rng ~default:"1.01" 1.0 0.02)
           (const ~rng ~default:"0.5" 0.25 0.5)
           (const ~rng ~default:"0.99" 0.95 0.04)
           (const ~rng ~default:"0.01" 0.005 0.02))
    else
      buf_add b
        (Fmt.str
           "double %s_%s_%d(double x)\n{\n  double y = %s_%s_%d(x) - %s;\n  if (y > %s) {\n    y = %s;\n  }\n  return y;\n}\n\n"
           prefix tag d prefix tag (d + 1)
           (const ~rng ~default:"0.25" 0.1 0.4)
           (const ~rng ~default:"10.0" 8.0 4.0)
           (const ~rng ~default:"10.0" 8.0 4.0))
  done

let generate ?(seed = 0) (p : params) : string =
  let rng = if seed = 0 then None else Some (rng_make seed) in
  let b = Buffer.create 4096 in
  buf_add b "struct Block { double a; double bfield; double c; long seq; };\n";
  buf_add b "typedef struct Block Block;\n\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "Block *region%d;\n" r)
  done;
  buf_add b "\nextern void sendControl(double v);\n";
  buf_add b "extern void log_event(char *m, double v);\n\n";
  (* init function *)
  buf_add b "void initShm()\n/*** SafeFlow Annotation shminit ***/\n{\n";
  buf_add b "  int id;\n  void *base;\n  char *cursor;\n";
  buf_add b
    (Fmt.str "  id = shmget(6000, %d * sizeof(Block), 438);\n" p.regions);
  buf_add b "  base = shmat(id, (void *) 0, 0);\n  cursor = (char *) base;\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "  region%d = (Block *) cursor;\n" r);
    if r < p.regions - 1 then buf_add b "  cursor = cursor + sizeof(Block);\n"
  done;
  buf_add b "  /*** SafeFlow Annotation\n";
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "       assume(shmvar(region%d, sizeof(Block)))\n" r)
  done;
  for r = 0 to p.regions - 1 do
    buf_add b (Fmt.str "       assume(noncore(region%d))\n" r)
  done;
  buf_add b "  ***/\n}\n\n";
  (* helper chains: pure local arithmetic *)
  for w = 0 to p.workers - 1 do
    emit_helper_chain b ~rng ~prefix:"helper" ~tag:(string_of_int w)
      ~depth:p.chain_depth;
    let region = w mod p.regions in
    let monitored =
      float_of_int w < (p.monitored_fraction *. float_of_int p.workers) -. 1e-9
    in
    if monitored then
      buf_add b
        (Fmt.str
           "double worker%d()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = region%d->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return helper_%d_0(v);\n}\n\n"
           w region region w)
    else
      buf_add b
        (Fmt.str
           "double worker%d()\n{\n  double v = region%d->bfield;\n  return helper_%d_0(v);\n}\n\n"
           w region w)
  done;
  (* main: combine everything *)
  buf_add b "int main()\n{\n  double total = 0.0;\n  long tick = 0;\n";
  buf_add b "  initShm();\n  while (tick < 1000) {\n";
  for w = 0 to p.workers - 1 do
    buf_add b (Fmt.str "    total = total + worker%d();\n" w)
  done;
  buf_add b "    /*** SafeFlow Annotation assert(safe(total)) ***/\n";
  buf_add b "    sendControl(total);\n    total = 0.0;\n    tick = tick + 1;\n  }\n";
  buf_add b "  return 0;\n}\n";
  Buffer.contents b

(** Scale by a single knob: worker count (size grows roughly linearly). *)
let of_size ?seed n =
  generate ?seed { default with workers = n; regions = max 2 (n / 4); chain_depth = 3 }

(* -- fleet generation --------------------------------------------------------- *)

type fleet_params = {
  fleet_n : int;
  fleet_workers : int;
  fleet_overlap : float;
  fleet_dup : float;
}

let default_fleet =
  { fleet_n = 16; fleet_workers = 4; fleet_overlap = 0.5; fleet_dup = 0.2 }

(* Members of a fleet share a byte-identical prelude (regions + initShm)
   and a byte-identical prefix of "shared pool" workers, so a shared
   function sits at the same (line, col) in every member that includes
   it.  Content digests include source positions; the identical-prefix
   layout is what lets per-function cache entries (absint summaries,
   phase-2 verdicts, pair edge blocks) hit across members when the
   sources are analyzed under one normalized source label. *)
let fleet ?(seed = 1) (fp : fleet_params) : (string * string) list =
  let nregions = 2 in
  let shared_k =
    max 0
      (min fp.fleet_workers
         (int_of_float ((fp.fleet_overlap *. float_of_int fp.fleet_workers) +. 0.5)))
  in
  (* shared-pool coefficients come from the fleet seed alone, so the
     pool text is identical in every member *)
  let shared_pool =
    let b = Buffer.create 1024 in
    let rng = Some (rng_make (seed * 7919)) in
    for i = 0 to shared_k - 1 do
      emit_helper_chain b ~rng ~prefix:"shared_h" ~tag:(string_of_int i) ~depth:2;
      let region = i mod nregions in
      if i mod 2 = 0 then
        buf_add b
          (Fmt.str
             "double shared_w%d()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = region%d->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return shared_h_%d_0(v);\n}\n\n"
             i region region i)
      else
        buf_add b
          (Fmt.str
             "double shared_w%d()\n{\n  double v = region%d->bfield;\n  return shared_h_%d_0(v);\n}\n\n"
             i region i)
    done;
    Buffer.contents b
  in
  let prelude =
    let b = Buffer.create 1024 in
    buf_add b "struct Block { double a; double bfield; double c; long seq; };\n";
    buf_add b "typedef struct Block Block;\n\n";
    for r = 0 to nregions - 1 do
      buf_add b (Fmt.str "Block *region%d;\n" r)
    done;
    buf_add b "\nextern void sendControl(double v);\n\n";
    buf_add b "void initShm()\n/*** SafeFlow Annotation shminit ***/\n{\n";
    buf_add b "  int id;\n  void *base;\n  char *cursor;\n";
    buf_add b (Fmt.str "  id = shmget(6000, %d * sizeof(Block), 438);\n" nregions);
    buf_add b "  base = shmat(id, (void *) 0, 0);\n  cursor = (char *) base;\n";
    for r = 0 to nregions - 1 do
      buf_add b (Fmt.str "  region%d = (Block *) cursor;\n" r);
      if r < nregions - 1 then buf_add b "  cursor = cursor + sizeof(Block);\n"
    done;
    buf_add b "  /*** SafeFlow Annotation\n";
    for r = 0 to nregions - 1 do
      buf_add b (Fmt.str "       assume(shmvar(region%d, sizeof(Block)))\n" r)
    done;
    for r = 0 to nregions - 1 do
      buf_add b (Fmt.str "       assume(noncore(region%d))\n" r)
    done;
    buf_add b "  ***/\n}\n\n";
    Buffer.contents b
  in
  let member m =
    let b = Buffer.create 4096 in
    buf_add b prelude;
    buf_add b shared_pool;
    (* unique tail: member-specific workers with member-seeded constants *)
    let rng = Some (rng_make ((seed * 31) + (m * 2654435761))) in
    let uniques = fp.fleet_workers - shared_k in
    for j = 0 to uniques - 1 do
      let tag = Fmt.str "m%d_%d" m j in
      emit_helper_chain b ~rng ~prefix:"uh" ~tag ~depth:2;
      let region = j mod nregions in
      if j mod 2 = 0 then
        buf_add b
          (Fmt.str
             "double uw_%s()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = region%d->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return uh_%s_0(v);\n}\n\n"
             tag region region tag)
      else
        buf_add b
          (Fmt.str
             "double uw_%s()\n{\n  double v = region%d->bfield;\n  return uh_%s_0(v);\n}\n\n"
             tag region tag)
    done;
    buf_add b "int main()\n{\n  double total = 0.0;\n";
    buf_add b "  initShm();\n";
    for i = 0 to shared_k - 1 do
      buf_add b (Fmt.str "  total = total + shared_w%d();\n" i)
    done;
    for j = 0 to uniques - 1 do
      buf_add b (Fmt.str "  total = total + uw_m%d_%d();\n" m j)
    done;
    buf_add b "  /*** SafeFlow Annotation assert(safe(total)) ***/\n";
    buf_add b "  sendControl(total);\n  return 0;\n}\n";
    Buffer.contents b
  in
  (* duplicate members are byte-copies of member 0 under their own file
     names: the strongest dedupe case (prepared IR and every
     program-granularity namespace hit cross-system) *)
  let ndup = int_of_float (fp.fleet_dup *. float_of_int fp.fleet_n) in
  let member0 = if fp.fleet_n > 0 then member 0 else "" in
  List.init fp.fleet_n (fun m ->
      let name = Fmt.str "member_%04d.c" m in
      if m = 0 then (name, member0)
      else if m <= ndup then (name, member0)
      else (name, member m))

(** Worst-case workload for the exact phase-3 engine: a binary tree of
    monitoring functions.  Each level contributes two alternative
    monitors with distinct assumptions, both calling into the next level,
    so the number of distinct monitoring contexts reaching the leaves is
    2^depth — the paper's "exponential in run-time complexity" case.  The
    summary engine (B4) stays polynomial in per-instruction work. *)
let context_explosion ~depth : string =
  let b = Buffer.create 4096 in
  buf_add b "struct Block { double a; double bfield; };\n";
  buf_add b "typedef struct Block Block;\n\n";
  let nregions = 2 * depth in
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "Block *region%d;\n" r)
  done;
  buf_add b "\nextern void sendControl(double v);\n\n";
  buf_add b "void initShm()\n/*** SafeFlow Annotation shminit ***/\n{\n";
  buf_add b "  int id;\n  void *base;\n  char *cursor;\n";
  buf_add b (Fmt.str "  id = shmget(6500, %d * sizeof(Block), 438);\n" nregions);
  buf_add b "  base = shmat(id, (void *) 0, 0);\n  cursor = (char *) base;\n";
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "  region%d = (Block *) cursor;\n" r);
    if r < nregions - 1 then buf_add b "  cursor = cursor + sizeof(Block);\n"
  done;
  buf_add b "  /*** SafeFlow Annotation\n";
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "       assume(shmvar(region%d, sizeof(Block)))\n" r)
  done;
  for r = 0 to nregions - 1 do
    buf_add b (Fmt.str "       assume(noncore(region%d))\n" r)
  done;
  buf_add b "  ***/\n}\n\n";
  (* the leaf does some arithmetic on a monitored read of region 0 *)
  buf_add b
    "double leaf()\n{\n  double v = region0->a;\n  if (v > 5.0 || v < -5.0) {\n    return 0.0;\n  }\n  return v * 0.5;\n}\n\n";
  (* levels from the bottom up: level d has two monitors calling level d+1 *)
  for level = depth - 1 downto 0 do
    let callee side =
      if level = depth - 1 then "leaf()"
      else Fmt.str "m%c%d()" side (level + 1)
    in
    List.iteri
      (fun k side ->
        let region = (2 * level) + k in
        buf_add b
          (Fmt.str
             "double m%c%d()\n/*** SafeFlow Annotation assume(core(region%d, 0, sizeof(Block))) ***/\n{\n  double v = %s + %s;\n  if (v > 10.0) {\n    v = 10.0;\n  }\n  return v;\n}\n\n"
             side level region (callee 'A') (callee 'B')))
      [ 'A'; 'B' ]
  done;
  buf_add b
    "int main()\n{\n  double total;\n  initShm();\n  total = mA0() + mB0();\n\
     \  /*** SafeFlow Annotation assert(safe(total)) ***/\n  sendControl(total);\n\
     \  return 0;\n}\n";
  Buffer.contents b
