(** Synthetic core-component generator for the scalability benchmarks
    (B2) and the fleet benchmarks: configurable region count, worker
    functions, helper-chain depth and monitored fraction.

    Generation is deterministic and host-independent: randomness comes
    from a seeded LCG, never from [Random], so a (seed, params) pair
    reproduces identical sources on every machine.  Seed 0 (the default)
    reproduces the historical unseeded output byte-for-byte. *)

type params = {
  regions : int;
  workers : int;
  chain_depth : int;
  monitored_fraction : float;
}

val default : params

val generate : ?seed:int -> params -> string
(** MiniC source of a synthetic core component.  A non-zero [seed]
    varies the pure-arithmetic constants of the helper chains — every
    content digest changes, the taint structure and findings do not. *)

val of_size : ?seed:int -> int -> string
(** single-knob scaling: worker count (size grows roughly linearly) *)

(** {1 Fleets} *)

type fleet_params = {
  fleet_n : int;        (** number of member systems *)
  fleet_workers : int;  (** worker functions per member *)
  fleet_overlap : float;
      (** fraction of each member's workers drawn from a shared pool
          placed at byte-identical source positions in every member —
          the controlled cross-system function overlap *)
  fleet_dup : float;
      (** fraction of members that are exact byte-copies of member 0
          under their own file names *)
}

val default_fleet : fleet_params

val fleet : ?seed:int -> fleet_params -> (string * string) list
(** [(file name, MiniC source)] for every member.  Shared-pool functions
    are byte-identical (text {e and} position) across members, so their
    per-function cache entries dedupe fleet-wide when members are
    analyzed under one normalized source label (see {!Fleet.run}). *)

val context_explosion : depth:int -> string
(** binary tree of monitoring functions: 2^depth distinct monitoring
    contexts reach the leaf — the exact engine's exponential case (B4) *)
