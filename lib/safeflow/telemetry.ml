(** Telemetry implementation (see the interface for the contract).

    Hot-path discipline: every entry point loads one atomic flag and
    returns when telemetry is off, so instrumented code costs a load and
    a branch when disabled.  When enabled, span finish and counter
    registration take a global mutex; counter updates are lock-free
    atomics.

    Fleet aggregation: a forked worker process records into its own
    inherited copy of this state (cleared by {!begin_worker}), packages
    it as a versioned {!snapshot} at exit, and the fleet parent merges
    every worker snapshot back in with {!merge_worker} — counters
    summed, gauges max'd, spans kept per worker for the multi-process
    Chrome trace and merged by name into the aggregated tree. *)

external now_ns : unit -> int64 = "safeflow_monotonic_ns"

let on = Atomic.make false

let enabled () = Atomic.get on

(* -- Spans --------------------------------------------------------------------- *)

type span_record = {
  s_id : int;
  s_parent : int;
  s_name : string;
  s_args : (string * string) list;
  s_domain : int;
  s_start_ns : int64;
  s_dur_ns : int64;
}

type active = {
  a_id : int;
  a_parent : int;
  a_name : string;
  a_args : (string * string) list;
  a_t0 : int64;
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* trace epoch: all exported timestamps are relative to this.  A forked
   worker inherits the parent's epoch, and CLOCK_MONOTONIC is
   system-wide, so parent and worker span timestamps share one timeline
   in the merged trace. *)
let epoch = Atomic.make (now_ns ())

let next_span_id = Atomic.make 0

let finished : span_record list ref = ref []  (* newest first; guarded by [lock] *)

(* per-domain stack of open spans *)
let stack_key : active list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | a :: _ -> a.a_id in
    let a =
      {
        a_id = Atomic.fetch_and_add next_span_id 1;
        a_parent = parent;
        a_name = name;
        a_args = args;
        a_t0 = now_ns ();
      }
    in
    stack := a :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) a.a_t0 in
        (match !stack with _ :: tl -> stack := tl | [] -> ());
        let r =
          {
            s_id = a.a_id;
            s_parent = a.a_parent;
            s_name = a.a_name;
            s_args = a.a_args;
            s_domain = (Domain.self () :> int);
            s_start_ns = Int64.sub a.a_t0 (Atomic.get epoch);
            s_dur_ns = dur;
          }
        in
        locked (fun () -> finished := r :: !finished))
      f
  end

let sort_spans l =
  List.sort (fun a b -> compare (a.s_start_ns, a.s_id) (b.s_start_ns, b.s_id)) l

let spans () = sort_spans (locked (fun () -> !finished))

(* -- Counters and gauges --------------------------------------------------------- *)

type counter = int Atomic.t

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

(* names with gauge semantics: merged across workers by max, not sum *)
let gauge_set : (string, unit) Hashtbl.t = Hashtbl.create 8

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace registry name c;
        c)

let gauge name =
  let c = counter name in
  locked (fun () -> Hashtbl.replace gauge_set name ());
  c

let is_gauge name = locked (fun () -> Hashtbl.mem gauge_set name)

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

let rec record_max c n =
  if Atomic.get on then begin
    let v = Atomic.get c in
    if n > v && not (Atomic.compare_and_set c v n) then record_max c n
  end

let value c = Atomic.get c

let counters () =
  locked (fun () ->
      List.sort compare
        (Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) registry []))

(* float gauges: named floating-point measurements with max-retain
   semantics (analyses/sec and friends, which an int counter would
   truncate); guarded by [lock] *)
let fgauges : (string, float) Hashtbl.t = Hashtbl.create 8

let record_float_max name v =
  if Atomic.get on then
    locked (fun () ->
        match Hashtbl.find_opt fgauges name with
        | Some old when old >= v -> ()
        | _ -> Hashtbl.replace fgauges name v)

let float_gauges () =
  locked (fun () ->
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) fgauges []))

(* -- Histograms ------------------------------------------------------------------ *)

(* log2-bucketed latency histograms: bucket [i] counts observations with
   duration in [2^i, 2^(i+1)) ns (bucket 0 additionally absorbs 0 and
   1 ns).  64 buckets cover the full non-negative int63 range, so no
   observation is ever clipped.  Updates are lock-free atomics, same
   discipline as counters; percentiles are recomputed from the buckets
   on export, which makes the representation mergeable bucket-wise
   across fleet workers. *)
let hist_buckets = 64

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;  (* total observed ns *)
  h_b : int Atomic.t array;
}

let hist_registry : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt hist_registry name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0;
            h_b = Array.init hist_buckets (fun _ -> Atomic.make 0);
          }
        in
        Hashtbl.replace hist_registry name h;
        h)

let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let i = ref 0 in
    let v = ref ns in
    while !v > 1 do
      i := !i + 1;
      v := !v lsr 1
    done;
    min (hist_buckets - 1) !i
  end

(* inclusive upper bound of bucket [i], used as the deterministic
   percentile estimate (pessimistic: reports the bucket ceiling) *)
let bucket_upper_ns i =
  if i >= 62 then max_int else (1 lsl (i + 1)) - 1

let observe_ns h ns =
  if Atomic.get on then begin
    let ns = if Int64.compare ns 0L < 0 then 0 else Int64.to_int ns in
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum ns);
    ignore (Atomic.fetch_and_add h.h_b.(bucket_of_ns ns) 1)
  end

let time_hist h f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> observe_ns h (Int64.sub (now_ns ()) t0)) f
  end

type hist_view = {
  hv_name : string;
  hv_count : int;
  hv_sum_ns : int;
  hv_buckets : int array;
  hv_p50_ns : int;
  hv_p90_ns : int;
  hv_p99_ns : int;
}

let percentile_ns buckets count q =
  if count = 0 then 0
  else begin
    let target = max 1 (min count (int_of_float (ceil (q *. float_of_int count)))) in
    let acc = ref 0 in
    let res = ref 0 in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if n > 0 then res := bucket_upper_ns i;
           if !acc >= target then raise Exit)
         buckets
     with Exit -> ());
    !res
  end

let view_of_buckets name count sum buckets =
  {
    hv_name = name;
    hv_count = count;
    hv_sum_ns = sum;
    hv_buckets = buckets;
    hv_p50_ns = percentile_ns buckets count 0.50;
    hv_p90_ns = percentile_ns buckets count 0.90;
    hv_p99_ns = percentile_ns buckets count 0.99;
  }

let histograms () =
  let hs =
    locked (fun () -> Hashtbl.fold (fun _ h acc -> h :: acc) hist_registry [])
  in
  List.sort compare
    (List.map
       (fun h ->
         view_of_buckets h.h_name (Atomic.get h.h_count) (Atomic.get h.h_sum)
           (Array.map Atomic.get h.h_b))
       hs)

(* -- Sections -------------------------------------------------------------------- *)

(* named raw-JSON fragments contributed by other subsystems (monitoring
   coverage per analyzed file, notably) and embedded verbatim in the
   stats JSON; guarded by [lock], first-set order preserved *)
let section_tbl : (string * string) list ref = ref []

let set_section name json =
  locked (fun () ->
      section_tbl := (name, json) :: List.remove_assoc name !section_tbl)

let sections () = locked (fun () -> List.rev !section_tbl)

(* -- Worker snapshots -------------------------------------------------------------- *)

(* v2: adds [sn_hists] (log-bucketed latency histograms, merged
   bucket-wise) *)
let snapshot_version = 2

type snapshot = {
  sn_version : int;
  sn_pid : int;
  sn_counters : (string * int) list;
  sn_gauge_names : string list;
  sn_fgauges : (string * float) list;
  sn_hists : (string * int * int * int array) list;
      (* name, count, sum_ns, buckets *)
  sn_spans : span_record list;
  sn_sections : (string * string) list;
}

let snapshot () =
  {
    sn_version = snapshot_version;
    sn_pid = Unix.getpid ();
    sn_counters = counters ();
    sn_gauge_names =
      locked (fun () ->
          List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) gauge_set []));
    sn_fgauges = float_gauges ();
    sn_hists =
      List.map
        (fun hv -> (hv.hv_name, hv.hv_count, hv.hv_sum_ns, hv.hv_buckets))
        (histograms ());
    sn_spans = spans ();
    sn_sections = sections ();
  }

type worker_view = { w_label : string; w_snapshot : snapshot }

let worker_views : worker_view list ref = ref []  (* newest first; guarded by [lock] *)

let merge_worker ~label (s : snapshot) =
  if s.sn_version <> snapshot_version then false
  else begin
    (* adopt the worker's gauge classification before merging, so a
       gauge the parent never registered still merges by max *)
    List.iter (fun n -> ignore (gauge n)) s.sn_gauge_names;
    List.iter
      (fun (name, v) ->
        let c = counter name in
        if List.mem name s.sn_gauge_names then record_max c v else add c v)
      s.sn_counters;
    List.iter (fun (n, v) -> record_float_max n v) s.sn_fgauges;
    (* histograms merge bucket-wise: counts, sums and every bucket are
       plain sums, and percentiles are recomputed from the merged
       buckets on export *)
    List.iter
      (fun (name, count, sum, buckets) ->
        let h = histogram name in
        ignore (Atomic.fetch_and_add h.h_count count);
        ignore (Atomic.fetch_and_add h.h_sum sum);
        Array.iteri
          (fun i n ->
            if i < hist_buckets && n > 0 then
              ignore (Atomic.fetch_and_add h.h_b.(i) n))
          buckets)
      s.sn_hists;
    (* sections carry analysis-derived data, not timings: keep the
       parent's value when both set the same name *)
    List.iter
      (fun (name, json) ->
        locked (fun () ->
            if not (List.mem_assoc name !section_tbl) then
              section_tbl := (name, json) :: !section_tbl))
      s.sn_sections;
    locked (fun () ->
        worker_views := { w_label = label; w_snapshot = s } :: !worker_views);
    true
  end

let workers () = List.rev (locked (fun () -> !worker_views))

let zero_hists () =
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0;
      Array.iter (fun b -> Atomic.set b 0) h.h_b)
    hist_registry

let begin_worker () =
  locked (fun () ->
      finished := [];
      section_tbl := [];
      worker_views := [];
      Hashtbl.reset fgauges;
      zero_hists ();
      Hashtbl.iter (fun _ c -> Atomic.set c 0) registry)

(* -- Switch / reset -------------------------------------------------------------- *)

let reset () =
  Atomic.set epoch (now_ns ());
  locked (fun () ->
      finished := [];
      section_tbl := [];
      worker_views := [];
      Hashtbl.reset fgauges;
      zero_hists ();
      Hashtbl.iter (fun _ c -> Atomic.set c 0) registry)

let set_enabled b =
  if b && not (Atomic.get on) then Atomic.set epoch (now_ns ());
  Atomic.set on b

(* -- JSON helpers ----------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = Int64.to_float ns /. 1_000.0

let ms_of_ns ns = Int64.to_float ns /. 1_000_000.0

(* -- Chrome trace export ----------------------------------------------------------- *)

let write_chrome_trace path =
  let b = Buffer.create 4096 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',' in
  let meta ~pid name =
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
         pid (json_escape name))
  in
  let event ~pid s =
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"safeflow\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
         (json_escape s.s_name) (us_of_ns s.s_start_ns) (us_of_ns s.s_dur_ns) pid
         s.s_domain);
    if s.s_args <> [] then begin
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        s.s_args;
      Buffer.add_char b '}'
    end;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let self_pid = Unix.getpid () in
  let ws = workers () in
  meta ~pid:self_pid (if ws = [] then "safeflow" else "safeflow (fleet parent)");
  List.iter (fun w -> meta ~pid:w.w_snapshot.sn_pid w.w_label) ws;
  List.iter (event ~pid:self_pid) (spans ());
  List.iter
    (fun w ->
      List.iter (event ~pid:w.w_snapshot.sn_pid) (sort_spans w.w_snapshot.sn_spans))
    ws;
  (* latency histograms as trace counter events ("ph":"C"): one sample
     per histogram at the current trace time, so Perfetto renders a
     counter track with the percentile series next to the span rows *)
  let now_ts = us_of_ns (Int64.sub (now_ns ()) (Atomic.get epoch)) in
  List.iter
    (fun hv ->
      if hv.hv_count > 0 then begin
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"hist:%s\",\"cat\":\"safeflow\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,\"args\":{\"count\":%d,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f}}"
             (json_escape hv.hv_name) now_ts self_pid hv.hv_count
             (float_of_int hv.hv_p50_ns /. 1_000.0)
             (float_of_int hv.hv_p90_ns /. 1_000.0)
             (float_of_int hv.hv_p99_ns /. 1_000.0))
      end)
    (histograms ());
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* -- Aggregated span tree ------------------------------------------------------------ *)

(* One tree node per distinct name under a given parent aggregate:
   sibling spans sharing a name collapse into (count, total time), which
   keeps the tree readable when a phase opens hundreds of pair-build
   spans. *)
type agg = {
  g_name : string;
  mutable g_count : int;
  mutable g_total_ns : int64;
  g_children : (string, agg) Hashtbl.t;
  mutable g_order : string list;  (* child names, first-seen order, reversed *)
}

let new_agg name =
  { g_name = name; g_count = 0; g_total_ns = 0L; g_children = Hashtbl.create 4; g_order = [] }

(* fold one span list (its own id space) into [root]; worker span lists
   merge into the same tree by name, so the aggregated view is
   fleet-wide *)
let aggregate_into root (all : span_record list) =
  let by_id = Hashtbl.create (List.length all) in
  List.iter (fun s -> Hashtbl.replace by_id s.s_id s) all;
  (* aggregate node for a span: walk its ancestor chain, descending from
     the root through one agg per (depth, name) *)
  let rec agg_of (s : span_record) : agg =
    let parent_agg =
      match Hashtbl.find_opt by_id s.s_parent with
      | Some p -> agg_of p
      | None -> root
    in
    match Hashtbl.find_opt parent_agg.g_children s.s_name with
    | Some a -> a
    | None ->
      let a = new_agg s.s_name in
      Hashtbl.replace parent_agg.g_children s.s_name a;
      parent_agg.g_order <- s.s_name :: parent_agg.g_order;
      a
  in
  List.iter
    (fun s ->
      let a = agg_of s in
      a.g_count <- a.g_count + 1;
      a.g_total_ns <- Int64.add a.g_total_ns s.s_dur_ns)
    all

let aggregate () =
  let root = new_agg "" in
  aggregate_into root (spans ());
  List.iter
    (fun w -> aggregate_into root (sort_spans w.w_snapshot.sn_spans))
    (workers ());
  root

let rec iter_agg f depth (a : agg) =
  List.iter
    (fun name ->
      let child = Hashtbl.find a.g_children name in
      f depth child;
      iter_agg f (depth + 1) child)
    (List.rev a.g_order)

(* -- Stats JSON ---------------------------------------------------------------------- *)

(* v2: adds the "sections" object (raw JSON fragments from subsystems,
   e.g. per-file monitoring coverage).
   v3: adds "pid", the "gauges" object (float gauges such as
   fleet.analyses_per_sec) and the "workers" array (per-worker counter/
   gauge breakdown from merged fleet snapshots); "counters" and "spans"
   are the merged fleet-wide view when workers are present.
   v4: adds the "histograms" object (log2-bucketed latency histograms
   with count / total_ms / p50_us / p90_us / p99_us and sparse
   [bucket, count] pairs), both at top level (fleet-merged) and inside
   each "workers" entry. *)
let stats_json_schema = "safeflow-telemetry/4"

let buf_counters b (cs : (string * int) list) =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    cs;
  Buffer.add_char b '}'

let buf_fgauges b (gs : (string * float) list) =
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%.6f" (json_escape name) v))
    gs;
  Buffer.add_char b '}'

let buf_hists b (hs : hist_view list) =
  Buffer.add_char b '{';
  List.iteri
    (fun i hv ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"total_ms\":%.3f,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f,\"buckets\":["
           (json_escape hv.hv_name) hv.hv_count
           (float_of_int hv.hv_sum_ns /. 1_000_000.0)
           (float_of_int hv.hv_p50_ns /. 1_000.0)
           (float_of_int hv.hv_p90_ns /. 1_000.0)
           (float_of_int hv.hv_p99_ns /. 1_000.0));
      let first = ref true in
      Array.iteri
        (fun j n ->
          if n > 0 then begin
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b (Printf.sprintf "[%d,%d]" j n)
          end)
        hv.hv_buckets;
      Buffer.add_string b "]}")
    hs;
  Buffer.add_char b '}'

let worker_hist_views (s : snapshot) =
  List.map
    (fun (name, count, sum, buckets) -> view_of_buckets name count sum buckets)
    s.sn_hists

let write_stats_json path =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\"" stats_json_schema);
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d" (Unix.getpid ()));
  Buffer.add_string b ",\"counters\":";
  buf_counters b (counters ());
  Buffer.add_string b ",\"gauges\":";
  buf_fgauges b (float_gauges ());
  Buffer.add_string b ",\"histograms\":";
  buf_hists b (histograms ());
  Buffer.add_string b ",\"spans\":[";
  let first = ref true in
  iter_agg
    (fun depth a ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"depth\":%d,\"count\":%d,\"total_ms\":%.3f}"
           (json_escape a.g_name) depth a.g_count (ms_of_ns a.g_total_ns)))
    0 (aggregate ());
  Buffer.add_string b "],\"workers\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"label\":\"%s\",\"pid\":%d,\"spans\":%d,\"counters\":"
           (json_escape w.w_label) w.w_snapshot.sn_pid
           (List.length w.w_snapshot.sn_spans));
      buf_counters b w.w_snapshot.sn_counters;
      Buffer.add_string b ",\"gauges\":";
      buf_fgauges b w.w_snapshot.sn_fgauges;
      Buffer.add_string b ",\"histograms\":";
      buf_hists b (worker_hist_views w.w_snapshot);
      Buffer.add_char b '}')
    (workers ());
  Buffer.add_string b "],\"sections\":{";
  List.iteri
    (fun i (name, json) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape name) json))
    (sections ());
  Buffer.add_string b "}}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* -- Human-readable tree -------------------------------------------------------------- *)

let pp_stats ppf () =
  Fmt.pf ppf "@[<v>== telemetry ==@,";
  (match workers () with
  | [] -> ()
  | ws ->
    Fmt.pf ppf "merged %d worker snapshot(s):%a@," (List.length ws)
      (fun ppf ws ->
        List.iter
          (fun w -> Fmt.pf ppf " %s(pid %d)" w.w_label w.w_snapshot.sn_pid)
          ws)
      ws);
  Fmt.pf ppf "span tree (count, total wall time):@,";
  let any = ref false in
  iter_agg
    (fun depth a ->
      any := true;
      let indent = String.make (2 + (2 * depth)) ' ' in
      let label = indent ^ a.g_name in
      Fmt.pf ppf "%-42s %6d x %10.2f ms@," label a.g_count (ms_of_ns a.g_total_ns))
    0 (aggregate ());
  if not !any then Fmt.pf ppf "  (no spans recorded)@,";
  Fmt.pf ppf "counters:@,";
  List.iter
    (fun (name, v) ->
      Fmt.pf ppf "  %-40s %12d%s@," name v
        (if is_gauge name then "  (gauge)" else ""))
    (counters ());
  (match float_gauges () with
  | [] -> ()
  | gs ->
    Fmt.pf ppf "gauges:@,";
    List.iter (fun (name, v) -> Fmt.pf ppf "  %-40s %12.3f@," name v) gs);
  (match List.filter (fun hv -> hv.hv_count > 0) (histograms ()) with
  | [] -> ()
  | hs ->
    Fmt.pf ppf "histograms (count, p50/p90/p99, total):@,";
    List.iter
      (fun hv ->
        Fmt.pf ppf "  %-28s %8d x  %8.1f/%8.1f/%8.1f us %10.2f ms@,"
          hv.hv_name hv.hv_count
          (float_of_int hv.hv_p50_ns /. 1_000.0)
          (float_of_int hv.hv_p90_ns /. 1_000.0)
          (float_of_int hv.hv_p99_ns /. 1_000.0)
          (float_of_int hv.hv_sum_ns /. 1_000_000.0))
      hs);
  Fmt.pf ppf "@]"
