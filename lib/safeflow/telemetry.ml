(** Telemetry implementation (see the interface for the contract).

    Hot-path discipline: every entry point loads one atomic flag and
    returns when telemetry is off, so instrumented code costs a load and
    a branch when disabled.  When enabled, span finish and counter
    registration take a global mutex; counter updates are lock-free
    atomics. *)

external now_ns : unit -> int64 = "safeflow_monotonic_ns"

let on = Atomic.make false

let enabled () = Atomic.get on

(* -- Spans --------------------------------------------------------------------- *)

type span_record = {
  s_id : int;
  s_parent : int;
  s_name : string;
  s_args : (string * string) list;
  s_domain : int;
  s_start_ns : int64;
  s_dur_ns : int64;
}

type active = {
  a_id : int;
  a_parent : int;
  a_name : string;
  a_args : (string * string) list;
  a_t0 : int64;
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* trace epoch: all exported timestamps are relative to this *)
let epoch = Atomic.make (now_ns ())

let next_span_id = Atomic.make 0

let finished : span_record list ref = ref []  (* newest first; guarded by [lock] *)

(* per-domain stack of open spans *)
let stack_key : active list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | a :: _ -> a.a_id in
    let a =
      {
        a_id = Atomic.fetch_and_add next_span_id 1;
        a_parent = parent;
        a_name = name;
        a_args = args;
        a_t0 = now_ns ();
      }
    in
    stack := a :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (now_ns ()) a.a_t0 in
        (match !stack with _ :: tl -> stack := tl | [] -> ());
        let r =
          {
            s_id = a.a_id;
            s_parent = a.a_parent;
            s_name = a.a_name;
            s_args = a.a_args;
            s_domain = (Domain.self () :> int);
            s_start_ns = Int64.sub a.a_t0 (Atomic.get epoch);
            s_dur_ns = dur;
          }
        in
        locked (fun () -> finished := r :: !finished))
      f
  end

let spans () =
  let l = locked (fun () -> !finished) in
  List.sort (fun a b -> compare (a.s_start_ns, a.s_id) (b.s_start_ns, b.s_id)) l

(* -- Counters ------------------------------------------------------------------- *)

type counter = int Atomic.t

let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.replace registry name c;
        c)

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

let rec record_max c n =
  if Atomic.get on then begin
    let v = Atomic.get c in
    if n > v && not (Atomic.compare_and_set c v n) then record_max c n
  end

let value c = Atomic.get c

let counters () =
  locked (fun () ->
      List.sort compare
        (Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) registry []))

(* -- Sections -------------------------------------------------------------------- *)

(* named raw-JSON fragments contributed by other subsystems (monitoring
   coverage per analyzed file, notably) and embedded verbatim in the
   stats JSON; guarded by [lock], first-set order preserved *)
let section_tbl : (string * string) list ref = ref []

let set_section name json =
  locked (fun () ->
      section_tbl := (name, json) :: List.remove_assoc name !section_tbl)

let sections () = locked (fun () -> List.rev !section_tbl)

(* -- Switch / reset -------------------------------------------------------------- *)

let reset () =
  Atomic.set epoch (now_ns ());
  locked (fun () ->
      finished := [];
      section_tbl := [];
      Hashtbl.iter (fun _ c -> Atomic.set c 0) registry)

let set_enabled b =
  if b && not (Atomic.get on) then Atomic.set epoch (now_ns ());
  Atomic.set on b

(* -- JSON helpers ----------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = Int64.to_float ns /. 1_000.0

let ms_of_ns ns = Int64.to_float ns /. 1_000_000.0

(* -- Chrome trace export ----------------------------------------------------------- *)

let write_chrome_trace path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"safeflow\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d"
           (json_escape s.s_name) (us_of_ns s.s_start_ns) (us_of_ns s.s_dur_ns) s.s_domain);
      if s.s_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.s_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    (spans ());
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* -- Aggregated span tree ------------------------------------------------------------ *)

(* One tree node per distinct name under a given parent aggregate:
   sibling spans sharing a name collapse into (count, total time), which
   keeps the tree readable when a phase opens hundreds of pair-build
   spans. *)
type agg = {
  g_name : string;
  mutable g_count : int;
  mutable g_total_ns : int64;
  g_children : (string, agg) Hashtbl.t;
  mutable g_order : string list;  (* child names, first-seen order, reversed *)
}

let new_agg name =
  { g_name = name; g_count = 0; g_total_ns = 0L; g_children = Hashtbl.create 4; g_order = [] }

let aggregate () =
  let all = spans () in
  let by_id = Hashtbl.create (List.length all) in
  List.iter (fun s -> Hashtbl.replace by_id s.s_id s) all;
  let root = new_agg "" in
  (* aggregate node for a span: walk its ancestor chain, descending from
     the root through one agg per (depth, name) *)
  let rec agg_of (s : span_record) : agg =
    let parent_agg =
      match Hashtbl.find_opt by_id s.s_parent with
      | Some p -> agg_of p
      | None -> root
    in
    match Hashtbl.find_opt parent_agg.g_children s.s_name with
    | Some a -> a
    | None ->
      let a = new_agg s.s_name in
      Hashtbl.replace parent_agg.g_children s.s_name a;
      parent_agg.g_order <- s.s_name :: parent_agg.g_order;
      a
  in
  List.iter
    (fun s ->
      let a = agg_of s in
      a.g_count <- a.g_count + 1;
      a.g_total_ns <- Int64.add a.g_total_ns s.s_dur_ns)
    all;
  root

let rec iter_agg f depth (a : agg) =
  List.iter
    (fun name ->
      let child = Hashtbl.find a.g_children name in
      f depth child;
      iter_agg f (depth + 1) child)
    (List.rev a.g_order)

(* -- Stats JSON ---------------------------------------------------------------------- *)

(* v2: adds the "sections" object (raw JSON fragments from subsystems,
   e.g. per-file monitoring coverage); counters and spans are unchanged *)
let stats_json_schema = "safeflow-telemetry/2"

let write_stats_json path =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":\"%s\"" stats_json_schema);
  Buffer.add_string b ",\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (counters ());
  Buffer.add_string b "},\"spans\":[";
  let first = ref true in
  iter_agg
    (fun depth a ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"depth\":%d,\"count\":%d,\"total_ms\":%.3f}"
           (json_escape a.g_name) depth a.g_count (ms_of_ns a.g_total_ns)))
    0 (aggregate ());
  Buffer.add_string b "],\"sections\":{";
  List.iteri
    (fun i (name, json) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape name) json))
    (sections ());
  Buffer.add_string b "}}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* -- Human-readable tree -------------------------------------------------------------- *)

let pp_stats ppf () =
  Fmt.pf ppf "@[<v>== telemetry ==@,";
  Fmt.pf ppf "span tree (count, total wall time):@,";
  let any = ref false in
  iter_agg
    (fun depth a ->
      any := true;
      let indent = String.make (2 + (2 * depth)) ' ' in
      let label = indent ^ a.g_name in
      Fmt.pf ppf "%-42s %6d x %10.2f ms@," label a.g_count (ms_of_ns a.g_total_ns))
    0 (aggregate ());
  if not !any then Fmt.pf ppf "  (no spans recorded)@,";
  Fmt.pf ppf "counters:@,";
  List.iter (fun (name, v) -> Fmt.pf ppf "  %-40s %12d@," name v) (counters ());
  Fmt.pf ppf "@]"
