(** Analysis telemetry: hierarchical phase spans, atomic counters and
    gauges, exportable as a Chrome-trace JSON, a human-readable tree, or
    a machine-readable stats JSON.

    The subsystem is {b disabled by default} and designed to be
    zero-overhead when off: {!span} runs its thunk directly after one
    atomic flag read, and counter updates reduce to the same flag read.
    Nothing here ever feeds back into {!Report.t}, so reports are
    byte-identical whether telemetry is on or off (asserted by
    [test/test_engine_equiv.ml]).

    Spans use a monotonic clock (CLOCK_MONOTONIC via a C stub) and a
    per-domain span stack ([Domain.DLS]), so instrumented code running on
    worker domains — the pair-build pool of {!Vfgraph}, the multi-system
    driver — records correctly-nested spans for its own domain without
    synchronizing with other domains; finished spans are merged into one
    global list under a mutex.  Counters are process-global atomics
    keyed by name, shared by all domains.

    Fleet aggregation (PR 8): telemetry is per-process, so a forked
    fleet worker records into its own copy of this state.  Workers call
    {!begin_worker} right after the fork (clearing inherited parent
    data while keeping the trace epoch, which — CLOCK_MONOTONIC being
    system-wide — keeps worker and parent spans on one timeline),
    capture a versioned {!snapshot} at exit, and ship it to the parent
    over the result channel.  The parent folds each one in with
    {!merge_worker}: counters summed, gauges max'd, float gauges max'd,
    spans kept per worker.  The merged view drives {!pp_stats}, a
    multi-process Chrome trace with real pids, and the [workers]
    section of the v3 stats JSON. *)

(** {1 Master switch} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** enabling also (re)starts the trace epoch; disable before comparing
    reports against an uninstrumented run is {e not} necessary — reports
    never contain telemetry *)

val reset : unit -> unit
(** drop all recorded spans and zero every counter (registrations are
    kept); restarts the trace epoch *)

val now_ns : unit -> int64
(** monotonic clock, nanoseconds since an arbitrary epoch *)

(** {1 Spans} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a child of the innermost open span on
    the current domain.  Exceptions propagate; the span is closed either
    way.  When disabled this is [f ()]. *)

type span_record = {
  s_id : int;
  s_parent : int;  (** -1 for a root span *)
  s_name : string;
  s_args : (string * string) list;
  s_domain : int;  (** domain id the span ran on *)
  s_start_ns : int64;  (** relative to the trace epoch *)
  s_dur_ns : int64;
}

val spans : unit -> span_record list
(** finished spans, in start order *)

(** {1 Counters and gauges} *)

type counter

val counter : string -> counter
(** registered process-global counter; the same name always returns the
    same counter.  Registration is idempotent and happens at module
    initialization time for the built-in inventory, so every registered
    counter appears (possibly as 0) in {!counters} and the stats JSON. *)

val gauge : string -> counter
(** like {!counter}, but marks the name as having gauge semantics:
    {!merge_worker} combines gauge values across workers by [max]
    instead of summing them.  Update with {!record_max}. *)

val incr : counter -> unit
(** +1 when enabled, no-op when disabled *)

val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** gauge semantics: retain the maximum observed value *)

val value : counter -> int

val counters : unit -> (string * int) list
(** every registered counter with its current value, sorted by name *)

val is_gauge : string -> bool
(** whether the name was registered with {!gauge} (or adopted from a
    merged worker snapshot) *)

val record_float_max : string -> float -> unit
(** named floating-point gauge with max-retain semantics — for
    measurements an int counter would truncate (analyses/sec).
    No-op when disabled. *)

val float_gauges : unit -> (string * float) list
(** recorded float gauges, sorted by name; the [gauges] object of the
    stats JSON *)

(** {1 Latency histograms}

    Log2-bucketed latency histograms (PR 9): bucket [i] counts
    observations with duration in [2^i, 2^(i+1)) ns, 64 buckets.  Like
    counters they are process-global, lock-free to update, and no-ops
    when telemetry is off.  Unlike a single span total, a histogram
    keeps the full latency distribution, and because the representation
    is pure bucket counts it merges across fleet workers bucket-wise —
    percentiles are recomputed from the merged buckets, never averaged. *)

type histogram

val histogram : string -> histogram
(** registered process-global histogram; idempotent by name, like
    {!counter} *)

val observe_ns : histogram -> int64 -> unit
(** record one observation (nanoseconds; negative values clamp to 0).
    No-op when disabled. *)

val time_hist : histogram -> (unit -> 'a) -> 'a
(** [time_hist h f] runs [f ()] and records its wall time into [h].
    Exceptions propagate; the observation is recorded either way.  When
    disabled this is [f ()]. *)

type hist_view = {
  hv_name : string;
  hv_count : int;
  hv_sum_ns : int;
  hv_buckets : int array;  (** [hist] bucket counts, length 64 *)
  hv_p50_ns : int;  (** bucket-ceiling estimate of the 50th percentile *)
  hv_p90_ns : int;
  hv_p99_ns : int;
}

val histograms : unit -> hist_view list
(** every registered histogram with its current buckets and recomputed
    percentiles, sorted by name; the [histograms] object of the v4
    stats JSON *)

(** {1 Sections} *)

val set_section : string -> string -> unit
(** [set_section name json] attaches a raw JSON fragment under the
    [sections] object of the stats JSON; setting an existing
    name replaces it.  Used for the per-file monitoring-coverage blocks
    ({!Coverage.to_json}).  Unlike counters, sections are recorded even
    while telemetry is disabled — they carry analysis-derived data, not
    timings. *)

val sections : unit -> (string * string) list
(** recorded sections, first-set order *)

(** {1 Fleet snapshots}

    Cross-process aggregation for fleet mode: a forked worker packages
    its telemetry state as a {!snapshot} and the parent merges it. *)

val snapshot_version : int
(** bumped whenever the {!snapshot} layout changes; {!merge_worker}
    rejects snapshots from a different version instead of
    mis-interpreting them *)

type snapshot = {
  sn_version : int;
  sn_pid : int;  (** pid of the recording process *)
  sn_counters : (string * int) list;
  sn_gauge_names : string list;  (** names with gauge (max-merge) semantics *)
  sn_fgauges : (string * float) list;
  sn_hists : (string * int * int * int array) list;
      (** per-histogram (name, count, sum_ns, buckets); merged
          bucket-wise by {!merge_worker} *)
  sn_spans : span_record list;
  sn_sections : (string * string) list;
}

val snapshot : unit -> snapshot
(** capture the current process's telemetry state (counters, gauges,
    finished spans, sections) for shipping to a fleet parent *)

val begin_worker : unit -> unit
(** called by a forked worker before doing any work: clears span /
    counter / section / worker state inherited from the parent's
    address space, but {e keeps} the trace epoch and the enabled flag,
    so worker span timestamps stay on the parent's timeline *)

val merge_worker : label:string -> snapshot -> bool
(** fold a worker snapshot into this process's telemetry: counters are
    summed, gauge-flagged counters and float gauges are max'd, sections
    are adopted when the parent has no section of that name, and the
    snapshot is retained verbatim for the per-worker stats breakdown
    and the multi-pid Chrome trace.  Returns [false] (and merges
    nothing) on a {!snapshot_version} mismatch. *)

type worker_view = { w_label : string; w_snapshot : snapshot }

val workers : unit -> worker_view list
(** merged worker snapshots, in merge order *)

(** {1 Export} *)

val write_chrome_trace : string -> unit
(** write all finished spans as Chrome trace-event JSON (load in
    [chrome://tracing] or Perfetto); one track per domain.  With merged
    worker snapshots present, worker spans are emitted under their real
    [pid] (with [process_name] metadata records), so a fleet run
    renders as side-by-side per-process timelines. *)

val write_stats_json : string -> unit
(** machine-readable snapshot: schema tag, pid, all counters, float
    gauges, per-name aggregated span timings (fleet-wide when worker
    snapshots were merged) and the per-worker breakdown — the file
    checked by the CI schema smoke test *)

val stats_json_schema : string
(** the [schema] field value written by {!write_stats_json} *)

val pp_stats : Format.formatter -> unit -> unit
(** human-readable span tree (sibling spans aggregated by name, with
    call counts and total wall time) followed by the counter table *)
