(** Analysis telemetry: hierarchical phase spans, atomic counters and
    gauges, exportable as a Chrome-trace JSON, a human-readable tree, or
    a machine-readable stats JSON.

    The subsystem is {b disabled by default} and designed to be
    zero-overhead when off: {!span} runs its thunk directly after one
    atomic flag read, and counter updates reduce to the same flag read.
    Nothing here ever feeds back into {!Report.t}, so reports are
    byte-identical whether telemetry is on or off (asserted by
    [test/test_engine_equiv.ml]).

    Spans use a monotonic clock (CLOCK_MONOTONIC via a C stub) and a
    per-domain span stack ([Domain.DLS]), so instrumented code running on
    worker domains — the pair-build pool of {!Vfgraph}, the multi-system
    driver — records correctly-nested spans for its own domain without
    synchronizing with other domains; finished spans are merged into one
    global list under a mutex.  Counters are process-global atomics
    keyed by name, shared by all domains. *)

(** {1 Master switch} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** enabling also (re)starts the trace epoch; disable before comparing
    reports against an uninstrumented run is {e not} necessary — reports
    never contain telemetry *)

val reset : unit -> unit
(** drop all recorded spans and zero every counter (registrations are
    kept); restarts the trace epoch *)

val now_ns : unit -> int64
(** monotonic clock, nanoseconds since an arbitrary epoch *)

(** {1 Spans} *)

val span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a child of the innermost open span on
    the current domain.  Exceptions propagate; the span is closed either
    way.  When disabled this is [f ()]. *)

type span_record = {
  s_id : int;
  s_parent : int;  (** -1 for a root span *)
  s_name : string;
  s_args : (string * string) list;
  s_domain : int;  (** domain id the span ran on *)
  s_start_ns : int64;  (** relative to the trace epoch *)
  s_dur_ns : int64;
}

val spans : unit -> span_record list
(** finished spans, in start order *)

(** {1 Counters and gauges} *)

type counter

val counter : string -> counter
(** registered process-global counter; the same name always returns the
    same counter.  Registration is idempotent and happens at module
    initialization time for the built-in inventory, so every registered
    counter appears (possibly as 0) in {!counters} and the stats JSON. *)

val incr : counter -> unit
(** +1 when enabled, no-op when disabled *)

val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** gauge semantics: retain the maximum observed value *)

val value : counter -> int

val counters : unit -> (string * int) list
(** every registered counter with its current value, sorted by name *)

(** {1 Sections} *)

val set_section : string -> string -> unit
(** [set_section name json] attaches a raw JSON fragment under the
    [sections] object of the stats JSON (schema 2); setting an existing
    name replaces it.  Used for the per-file monitoring-coverage blocks
    ({!Coverage.to_json}).  Unlike counters, sections are recorded even
    while telemetry is disabled — they carry analysis-derived data, not
    timings. *)

val sections : unit -> (string * string) list
(** recorded sections, first-set order *)

(** {1 Export} *)

val write_chrome_trace : string -> unit
(** write all finished spans as Chrome trace-event JSON (load in
    [chrome://tracing] or Perfetto); one track per domain *)

val write_stats_json : string -> unit
(** machine-readable snapshot: schema tag, all counters, and per-name
    aggregated span timings — the file checked by the CI schema smoke
    test *)

val stats_json_schema : string
(** the [schema] field value written by {!write_stats_json} *)

val pp_stats : Format.formatter -> unit -> unit
(** human-readable span tree (sibling spans aggregated by name, with
    call counts and total wall time) followed by the counter table *)
