/* Monotonic clock for the telemetry span timer.

   CLOCK_MONOTONIC is immune to wall-clock adjustments (NTP slew,
   manual date changes), which matters because spans are differences of
   two reads taken possibly seconds apart.  Nanosecond resolution keeps
   sub-microsecond spans (cache lookups) visible in traces. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value safeflow_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
