let tool = "1.2.0"
