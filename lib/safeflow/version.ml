let tool = "1.1.0"
