(** Single source of truth for the tool version.

    Artifact format versions live next to the code that defines each
    format ({!Cache.format_version}, {!Fingerprint.version},
    {!Diffreport.format_version}, {!Telemetry.stats_json_schema},
    {!Sarif.sarif_version}); everything that stamps an artifact with the
    {e tool} version — the CLI, SARIF export, bench JSON [meta] blocks —
    must read it from here rather than repeating the literal. *)

val tool : string
(** the SafeFlow tool version (semver) *)
