(** Sparse worklist phase-3 engine (see the interface for the contract).

    Structure: entities are interned to dense ids; per-entity taint bits,
    origins and successor-edge lists live in parallel growable arrays.
    Each newly discovered (function, context) pair is translated once
    into edges by {!build_pair} — a transcription of
    {!Phase3.analyze_pair} where every dynamic taint test becomes a
    static edge — and {!drain} runs the worklist to closure.  The final
    interned taint state is poured back into a {!Phase3.state} so that
    {!Phase3.collect_dependencies} (and the DOT export) are shared with
    the legacy engine verbatim. *)

open Minic
module Offset = Pointsto.Offset

(* Edge modes: how taint crosses the edge and which origin is recorded.
   [Mdata]/[Mctrl] mirror the legacy data→data / ctrl→ctrl flows with the
   source as trace parent; [Mboth] fuses an [Mdata] and an [Mctrl] edge
   sharing destination and reason (the overwhelmingly common pairing);
   [Many_ctrl] mirrors the control-dependence rules, which fire on either
   taint kind and record no parent. *)
type mode = Mdata | Mctrl | Mboth | Many_ctrl

type edge = { e_dst : int; e_mode : mode; e_why : string }

(* Entity keys: (tag, a, b, c) over interned small ids — see {!ent_key}.
   Hashing this flat int tuple is what replaces structural hashing of
   [(string * assumption list * vid)] in the legacy taint tables. *)
type key = int * int * int * int

(* Per-function facts that do not depend on the monitoring context. *)
type finfo = {
  fi_func : Ssair.Ir.func;
  fi_blocks : (Ssair.Ir.bid, Ssair.Ir.block) Hashtbl.t;
  fi_def : (Ssair.Ir.vid, Ssair.Ir.def_site) Hashtbl.t Lazy.t;
      (** only consulted to resolve recv sockets, so built on demand *)
  fi_branches : (Ssair.Ir.bid * Ssair.Ir.vid) list;
      (** blocks ending in [Cbr]/[Switch] on a register, with the cond *)
  fi_closure : (Ssair.Ir.bid, Ssair.Ir.bid list) Hashtbl.t;
      (** branch block B ↦ blocks transitively control-dependent on B *)
}

type t = {
  st : Phase3.state;  (** receptacle for pairs/warnings/taints *)
  ctxs : Intern.Ctx.store;
  strs : string Intern.t;
  nodes : Pointsto.Node.t Intern.t;
  keys : key Intern.t;
  finfos : (string, finfo) Hashtbl.t;
  pairs_seen : (int * int, unit) Hashtbl.t;  (** (fname id, ctx id) *)
  pending : (Ssair.Ir.func * int) Queue.t;   (** discovered, to build *)
  why_memo : (string * int, string) Hashtbl.t;
      (** formatted "why" strings per (callee, arg index); edge building
          runs per pair, so formatting on every visit would dominate *)
  funcs_by_name : (string, Ssair.Ir.func) Hashtbl.t;
      (** [Ssair.Ir.find_func] is a linear scan; call sites resolve
          callees once per visit, so index the program up front *)
  own_ctxs : (string, int) Hashtbl.t;
      (** interned own-assumption context per function — needed at every
          call site, cheaper than materializing the callee's {!finfo} *)
  wl : int Queue.t;  (** worklist codes: entity id * 2 + (ctrl ? 1 : 0) *)
  (* parallel per-entity arrays, grown together by {!ensure_cap} *)
  mutable rev : Phase3.entity array;
  mutable edges : edge list array;
  mutable data : Bytes.t;
  mutable ctrl : Bytes.t;
  mutable d_parent : int array;  (** -1 = no parent *)
  mutable c_parent : int array;
  mutable d_why : string array;
  mutable c_why : string array;
  mutable n_edges : int;
  mutable n_pops : int;
}

let create st =
  let funcs_by_name = Hashtbl.create 64 in
  List.iter
    (fun (f : Ssair.Ir.func) -> Hashtbl.replace funcs_by_name f.Ssair.Ir.fname f)
    st.Phase3.prog.Ssair.Ir.funcs;
  {
    st;
    funcs_by_name;
    own_ctxs = Hashtbl.create 64;
    ctxs = Intern.Ctx.create ();
    strs = Intern.create 64;
    nodes = Intern.create 64;
    keys = Intern.create 1024;
    finfos = Hashtbl.create 16;
    pairs_seen = Hashtbl.create 64;
    pending = Queue.create ();
    why_memo = Hashtbl.create 64;
    wl = Queue.create ();
    rev = [||];
    edges = [||];
    data = Bytes.empty;
    ctrl = Bytes.empty;
    d_parent = [||];
    c_parent = [||];
    d_why = [||];
    c_why = [||];
    n_edges = 0;
    n_pops = 0;
  }

let ensure_cap g n =
  let cap = Array.length g.edges in
  if n > cap then begin
    let cap' = max 256 (max n (2 * cap)) in
    let grow_arr dummy a =
      let a' = Array.make cap' dummy in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.rev <- grow_arr (Phase3.Eregion "") g.rev;
    g.edges <- grow_arr [] g.edges;
    g.d_parent <- grow_arr (-1) g.d_parent;
    g.c_parent <- grow_arr (-1) g.c_parent;
    g.d_why <- grow_arr "" g.d_why;
    g.c_why <- grow_arr "" g.c_why;
    let grow_bytes b =
      let b' = Bytes.make cap' '\000' in
      Bytes.blit b 0 b' 0 cap;
      b'
    in
    g.data <- grow_bytes g.data;
    g.ctrl <- grow_bytes g.ctrl
  end

(* -- Entity interning --------------------------------------------------------- *)

let ent g key entity =
  let n = Intern.length g.keys in
  let id = Intern.intern g.keys key in
  if id = n then begin
    ensure_cap g (n + 1);
    g.rev.(id) <- entity
  end;
  id

let param_ent g fname cid pname =
  ent g (1, Intern.intern g.strs fname, cid, Intern.intern g.strs pname)
    (Phase3.Eparam (fname, Intern.Ctx.get g.ctxs cid, pname))

let ret_ent g fname cid =
  ent g (2, Intern.intern g.strs fname, cid, 0)
    (Phase3.Eret (fname, Intern.Ctx.get g.ctxs cid))

let node_ent g node = ent g (3, Intern.intern g.nodes node, 0, 0) (Phase3.Enode node)

let region_ent g r = ent g (4, Intern.intern g.strs r, 0, 0) (Phase3.Eregion r)

(* -- Taint setting and propagation -------------------------------------------- *)

let data_tainted g eid = Bytes.get g.data eid = '\001'
let ctrl_tainted g eid = Bytes.get g.ctrl eid = '\001'

let set_data g eid ~parent ~why =
  if not (data_tainted g eid) then begin
    Bytes.set g.data eid '\001';
    g.d_parent.(eid) <- parent;
    g.d_why.(eid) <- why;
    Queue.push (eid * 2) g.wl
  end

let set_ctrl g eid ~parent ~why =
  if not (ctrl_tainted g eid) then begin
    Bytes.set g.ctrl eid '\001';
    g.c_parent.(eid) <- parent;
    g.c_why.(eid) <- why;
    Queue.push ((eid * 2) + 1) g.wl
  end

(** Add an edge and replay the source's current taint across it, so
    edges built after their source was tainted still fire. *)
let add_edge g src e =
  g.edges.(src) <- e :: g.edges.(src);
  g.n_edges <- g.n_edges + 1;
  match e.e_mode with
  | Mdata -> if data_tainted g src then set_data g e.e_dst ~parent:src ~why:e.e_why
  | Mctrl -> if ctrl_tainted g src then set_ctrl g e.e_dst ~parent:src ~why:e.e_why
  | Mboth ->
    if data_tainted g src then set_data g e.e_dst ~parent:src ~why:e.e_why;
    if ctrl_tainted g src then set_ctrl g e.e_dst ~parent:src ~why:e.e_why
  | Many_ctrl ->
    if data_tainted g src || ctrl_tainted g src then
      set_ctrl g e.e_dst ~parent:(-1) ~why:e.e_why

let drain g =
  let rec go () =
    match Queue.take_opt g.wl with
    | None -> ()
    | Some code ->
      g.n_pops <- g.n_pops + 1;
      let eid = code lsr 1 in
      let is_ctrl = code land 1 = 1 in
      List.iter
        (fun e ->
          match (is_ctrl, e.e_mode) with
          | false, (Mdata | Mboth) -> set_data g e.e_dst ~parent:eid ~why:e.e_why
          | true, (Mctrl | Mboth) -> set_ctrl g e.e_dst ~parent:eid ~why:e.e_why
          | (false | true), Many_ctrl -> set_ctrl g e.e_dst ~parent:(-1) ~why:e.e_why
          | false, Mctrl | true, Mdata -> ())
        g.edges.(eid);
      go ()
  in
  go ()

(* Memoized legacy-matching "why" strings; [k >= 0] = argument position,
   [-1] = return value, [-2] = extern call passthrough. *)
let why_of g callee k =
  match Hashtbl.find_opt g.why_memo (callee, k) with
  | Some s -> s
  | None ->
    let s =
      if k >= 0 then Printf.sprintf "argument %d of call to %s" k callee
      else if k = -1 then Printf.sprintf "return value of %s" callee
      else Printf.sprintf "through external call %s" callee
    in
    Hashtbl.replace g.why_memo (callee, k) s;
    s

(* -- Static per-function facts ------------------------------------------------- *)

let own_ctx g (f : Ssair.Ir.func) : int =
  match Hashtbl.find_opt g.own_ctxs f.Ssair.Ir.fname with
  | Some cid -> cid
  | None ->
    let cid = Intern.Ctx.intern g.ctxs (Phase3.own_assumptions g.st f) in
    Hashtbl.replace g.own_ctxs f.Ssair.Ir.fname cid;
    cid

let finfo g (f : Ssair.Ir.func) : finfo =
  match Hashtbl.find_opt g.finfos f.Ssair.Ir.fname with
  | Some fi -> fi
  | None ->
    let cdg = Phase3.cdg_of g.st f in
    let fi_branches =
      List.filter_map
        (fun (b : Ssair.Ir.block) ->
          match b.Ssair.Ir.termin with
          | Ssair.Ir.Cbr (Ssair.Ir.Vreg id, _, _) | Ssair.Ir.Switch (Ssair.Ir.Vreg id, _, _)
            ->
            Some (b.Ssair.Ir.bbid, id)
          | _ -> None)
        f.Ssair.Ir.blocks
    in
    let fi_closure = Hashtbl.create 8 in
    List.iter
      (fun (bB, _) ->
        if not (Hashtbl.mem fi_closure bB) then begin
          (* transitive closure of the CDG "controls" relation from bB,
             excluding bB itself — mirrors Phase3.block_control_taint *)
          let seen = Hashtbl.create 8 in
          let rec go bid =
            List.iter
              (fun d ->
                if not (Hashtbl.mem seen d) then begin
                  Hashtbl.replace seen d ();
                  go d
                end)
              (Option.value ~default:[] (Hashtbl.find_opt cdg.Ssair.Cdg.controls bid))
          in
          go bB;
          Hashtbl.replace fi_closure bB (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
        end)
      fi_branches;
    let fi_blocks = Hashtbl.create 16 in
    List.iter (fun (b : Ssair.Ir.block) -> Hashtbl.replace fi_blocks b.Ssair.Ir.bbid b)
      f.Ssair.Ir.blocks;
    let fi =
      {
        fi_func = f;
        fi_blocks;
        fi_def = lazy (Ssair.Ir.def_table f);
        fi_branches;
        fi_closure;
      }
    in
    Hashtbl.replace g.finfos f.Ssair.Ir.fname fi;
    fi

(* -- Pair discovery ------------------------------------------------------------ *)

let discover_pair g (f : Ssair.Ir.func) cid =
  let fid = Intern.intern g.strs f.Ssair.Ir.fname in
  if not (Hashtbl.mem g.pairs_seen (fid, cid)) then begin
    Hashtbl.replace g.pairs_seen (fid, cid) ();
    Hashtbl.replace g.st.Phase3.pairs (f.Ssair.Ir.fname, Intern.Ctx.get g.ctxs cid) ();
    if not (Phase1.is_exempt g.st.Phase3.p1 f.Ssair.Ir.fname) then
      Queue.push (f, cid) g.pending
  end

(* -- Building one (function, context) pair ------------------------------------- *)

(** Transcribe [f] under context [cid] into value-flow edges; the static
    taint sources of the pair (unmonitored non-core reads, non-core recv
    buffers) are tainted immediately.  Edge-for-rule correspondence with
    {!Phase3.analyze_pair} is documented inline. *)
let build_pair g (f : Ssair.Ir.func) (cid : int) =
  let st = g.st in
  let config = st.Phase3.config in
  let env = st.Phase3.prog.Ssair.Ir.env in
  let fname = f.Ssair.Ir.fname in
  let ctx = Intern.Ctx.get g.ctxs cid in
  let fi = finfo g f in
  (* specialized entity constructors with the function id hoisted out of
     the per-instruction path *)
  let fid = Intern.intern g.strs fname in
  let eval vid = ent g (0, fid, cid, vid) (Phase3.Eval (fname, ctx, vid)) in
  let value_ent (v : Ssair.Ir.value) =
    match v with
    | Ssair.Ir.Vreg id -> Some (eval id)
    | Ssair.Ir.Vparam p ->
      Some (ent g (1, fid, cid, Intern.intern g.strs p) (Phase3.Eparam (fname, ctx, p)))
    | _ -> None
  in
  (* control-dependence targets per block: entity that gains ctrl-taint
     (with the given reason) when the block executes under a tainted
     branch; wired to branch conditions after the walk *)
  let ctrl_targets : (Ssair.Ir.bid, (int * string) list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_ct bid eid why =
    match Hashtbl.find_opt ctrl_targets bid with
    | Some l -> l := (eid, why) :: !l
    | None -> Hashtbl.replace ctrl_targets bid (ref [ (eid, why) ])
  in
  let flow_operands self vs why =
    List.iter
      (fun v ->
        match value_ent v with
        | Some ve -> add_edge g ve { e_dst = self; e_mode = Mboth; e_why = why }
        | None -> ())
      vs
  in
  List.iter
    (fun (b : Ssair.Ir.block) ->
      let bid = b.Ssair.Ir.bbid in
      (* phis: data/ctrl from incomings; implicit flow from the branches
         controlling the merge *)
      List.iter
        (fun (p : Ssair.Ir.phi) ->
          let self = eval p.Ssair.Ir.pid in
          List.iter
            (fun (_, v) ->
              match value_ent v with
              | Some ve -> add_edge g ve { e_dst = self; e_mode = Mboth; e_why = "phi merge" }
              | None -> ())
            p.Ssair.Ir.incoming;
          if config.Config.control_deps then begin
            let why = "phi merges paths controlled by an unsafe condition" in
            add_ct bid self why;
            List.iter
              (fun (pred, _) ->
                add_ct pred self why;
                match Hashtbl.find_opt fi.fi_blocks pred with
                | Some pblk -> (
                  match pblk.Ssair.Ir.termin with
                  | Ssair.Ir.Cbr (Ssair.Ir.Vreg cvid, _, _)
                  | Ssair.Ir.Switch (Ssair.Ir.Vreg cvid, _, _) ->
                    add_edge g (eval cvid)
                      { e_dst = self; e_mode = Many_ctrl; e_why = why }
                  | _ -> ())
                | None -> ())
              p.Ssair.Ir.incoming
          end)
        b.Ssair.Ir.phis;
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          let self = eval i.Ssair.Ir.iid in
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Alloca _ | Ssair.Ir.Annotation _ -> ()
          | Ssair.Ir.Load { ptr; lty } ->
            (* 1. shared-memory reads: static source (warning) when the
               context leaves a non-core target uncovered; edge from the
               region node for covered core regions *)
            let shm_targets = Phase1.shm_targets st.Phase3.p1 f ptr in
            Phase1.Rset.iter
              (fun tgt ->
                let rname = tgt.Phase1.Rtgt.region in
                match Shm.region st.Phase3.shm rname with
                | None -> ()
                | Some r ->
                  if r.Shm.r_noncore then begin
                    let covered =
                      match tgt.Phase1.Rtgt.off with
                      | Offset.Byte byte ->
                        Phase3.Ctx.covers_region ctx rname ~lo:byte
                          ~hi:(byte + Ty.sizeof env lty)
                      | Offset.Top -> Phase3.Ctx.covers_region ctx rname ~lo:0 ~hi:r.Shm.r_size
                    in
                    if not covered then begin
                      Phase3.warn st f ctx i.Ssair.Ir.iloc rname;
                      set_data g self ~parent:(region_ent g rname)
                        ~why:
                          (Fmt.str "unmonitored read of non-core region %s at %a" rname
                             Loc.pp i.Ssair.Ir.iloc)
                    end
                  end
                  else begin
                    let node = Pointsto.Node.Nshm rname in
                    if not (Phase3.Ctx.covers_node ctx node) then
                      add_edge g (node_ent g node)
                        { e_dst = self;
                          e_mode = Mdata;
                          e_why = "read of core region holding an unsafe value" }
                  end)
              shm_targets;
            (* 2. ordinary memory (cf. the shm/ordinary split in the
               legacy engine) *)
            if Phase1.Rset.is_empty shm_targets then
              Pointsto.Tset.iter
                (fun tgt ->
                  let node = tgt.Pointsto.Target.node in
                  if not (Phase3.Ctx.covers_node ctx node) then begin
                    let ne = node_ent g node in
                    add_edge g ne
                      { e_dst = self; e_mode = Mdata; e_why = "load from unsafe memory object" };
                    add_edge g ne
                      { e_dst = self;
                        e_mode = Mctrl;
                        e_why = "load from control-unsafe memory object" }
                  end)
                (Pointsto.points_to st.Phase3.pts f ptr);
            (* 3. tainted address *)
            flow_operands self [ ptr ] "load through unsafe pointer"
          | Ssair.Ir.Store { ptr; sval; _ } ->
            let target_nodes =
              let shm = Phase1.shm_targets st.Phase3.p1 f ptr in
              if Phase1.Rset.is_empty shm then
                Pointsto.Tset.fold
                  (fun tgt acc -> node_ent g tgt.Pointsto.Target.node :: acc)
                  (Pointsto.points_to st.Phase3.pts f ptr)
                  []
              else
                Phase1.Rset.fold
                  (fun tgt acc ->
                    node_ent g (Pointsto.Node.Nshm tgt.Phase1.Rtgt.region) :: acc)
                  shm []
            in
            (match value_ent sval with
            | Some ve ->
              List.iter
                (fun ne ->
                  add_edge g ve { e_dst = ne; e_mode = Mdata; e_why = "unsafe value stored" };
                  add_edge g ve
                    { e_dst = ne; e_mode = Mctrl; e_why = "control-unsafe value stored" })
                target_nodes
            | None -> ());
            if config.Config.control_deps then
              List.iter
                (fun ne -> add_ct bid ne "store controlled by an unsafe condition")
                target_nodes
          | Ssair.Ir.Binop { lhs; rhs; _ } -> flow_operands self [ lhs; rhs ] "arithmetic"
          | Ssair.Ir.Unop { operand; _ } -> flow_operands self [ operand ] "arithmetic"
          | Ssair.Ir.Cast { cval; _ } -> flow_operands self [ cval ] "cast"
          | Ssair.Ir.Gep { base; idx; _ } ->
            flow_operands self [ base; idx ] "address arithmetic"
          | Ssair.Ir.Call { callee; args; _ } -> (
            match Hashtbl.find_opt g.funcs_by_name callee with
            | Some gfn ->
              let gcid =
                let own = own_ctx g gfn in
                if config.Config.context_sensitive then Intern.Ctx.union g.ctxs cid own
                else own
              in
              discover_pair g gfn gcid;
              List.iteri
                (fun k arg ->
                  match List.nth_opt gfn.Ssair.Ir.fparams k with
                  | Some (pname, _) ->
                    let pe = param_ent g gfn.Ssair.Ir.fname gcid pname in
                    (match value_ent arg with
                    | Some ve ->
                      let why = why_of g callee k in
                      add_edge g ve { e_dst = pe; e_mode = Mboth; e_why = why }
                    | None -> ());
                    if config.Config.control_deps then
                      add_ct bid pe "call controlled by an unsafe condition"
                  | None -> ())
                args;
              let re = ret_ent g gfn.Ssair.Ir.fname gcid in
              let why = why_of g callee (-1) in
              add_edge g re { e_dst = self; e_mode = Mboth; e_why = why }
            | None ->
              (* extern; message-passing: recv through a non-core socket
                 is a static taint source for the buffer *)
              if List.mem callee config.Config.recv_functions then begin
                let socket_is_noncore =
                  match args with
                  | sock :: _ -> (
                    match sock with
                    | Ssair.Ir.Vparam p -> Hashtbl.mem st.Phase3.noncore_sockets p
                    | Ssair.Ir.Vreg id -> (
                      match Hashtbl.find_opt (Lazy.force fi.fi_def) id with
                      | Some
                          (Ssair.Ir.Def_instr
                             ( { idesc = Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal gl; _ }; _ },
                               _ )) ->
                        Hashtbl.mem st.Phase3.noncore_sockets gl
                      | _ -> false)
                    | _ -> false)
                  | [] -> false
                in
                if socket_is_noncore then
                  match args with
                  | _ :: buf :: _ ->
                    Pointsto.Tset.iter
                      (fun tgt ->
                        set_data g (node_ent g tgt.Pointsto.Target.node)
                          ~parent:(region_ent g (Fmt.str "socket via %s" callee))
                          ~why:"data received from a non-core component")
                      (Pointsto.points_to st.Phase3.pts f buf)
                  | _ -> ()
              end;
              flow_operands self args (why_of g callee (-2))))
        b.Ssair.Ir.instrs;
      match b.Ssair.Ir.termin with
      | Ssair.Ir.Ret (Some v) ->
        let re = ret_ent g fname cid in
        (match value_ent v with
        | Some ve -> add_edge g ve { e_dst = re; e_mode = Mboth; e_why = "returned" }
        | None -> ());
        if config.Config.control_deps then
          add_ct bid re "returned value selected by an unsafe condition"
      | _ -> ())
    f.Ssair.Ir.blocks;
  (* wire branch conditions to the control-dependence targets of every
     block in their controls-closure (Phase3.block_control_taint made
     sparse: the closure is static, only the cond's taint is dynamic) *)
  List.iter
    (fun (bB, cvid) ->
      let c = eval cvid in
      List.iter
        (fun d ->
          match Hashtbl.find_opt ctrl_targets d with
          | Some l ->
            List.iter
              (fun (teid, why) ->
                add_edge g c { e_dst = teid; e_mode = Many_ctrl; e_why = why })
              !l
          | None -> ())
        (Hashtbl.find fi.fi_closure bB))
    fi.fi_branches

(* -- Entry point --------------------------------------------------------------- *)

let run ?(config = Config.default) (prog : Ssair.Ir.program) (shm : Shm.t) (p1 : Phase1.t)
    (pts : Pointsto.t) : Phase3.result =
  let st = Phase3.make_state ~config prog shm p1 pts in
  let g = create st in
  List.iter
    (fun (f, ctx) -> discover_pair g f (Intern.Ctx.intern g.ctxs ctx))
    (Phase3.root_pairs st);
  (* pair discovery is taint-independent, so building all pairs first and
     draining once reaches the same closure as interleaving would *)
  let rec build () =
    match Queue.take_opt g.pending with
    | Some (f, cid) ->
      build_pair g f cid;
      build ()
    | None -> ()
  in
  build ();
  drain g;
  (* pour the interned taints back into the shared state shape *)
  let entity_origin parents whys i =
    let p = parents.(i) in
    { Phase3.parent = (if p < 0 then None else Some g.rev.(p)); why = whys.(i) }
  in
  for i = 0 to Intern.length g.keys - 1 do
    if data_tainted g i then
      Hashtbl.replace st.Phase3.data g.rev.(i) (entity_origin g.d_parent g.d_why i);
    if ctrl_tainted g i then
      Hashtbl.replace st.Phase3.ctrl g.rev.(i) (entity_origin g.c_parent g.c_why i)
  done;
  st.Phase3.passes <- 1;
  st.Phase3.changed <- false;
  let dependencies = Phase3.collect_dependencies st in
  {
    Phase3.warnings = Hashtbl.fold (fun _ w acc -> w :: acc) st.Phase3.warnings [];
    dependencies;
    passes = 1;
    pair_count = Hashtbl.length st.Phase3.pairs;
    engine_stats =
      [ ("vf_entities", Intern.length g.keys);
        ("vf_contexts", Intern.Ctx.length g.ctxs);
        ("vf_edges", g.n_edges);
        ("vf_pops", g.n_pops) ];
    taint_state = st;
  }
