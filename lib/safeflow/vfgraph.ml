(** Sparse worklist phase-3 engine (see the interface for the contract).

    Structure: entities are interned to dense ids; per-entity taint bits
    live in packed bitsets ({!Bitset}), origins in parallel int arrays,
    and the successor edges in one flat edge array that is finalized
    into a CSR adjacency ({!Csr}) right before the single worklist
    drain.  Each newly discovered (function, context) pair is translated
    once into a flat symbolic {e edge block} by {!build_pair_block} — a
    transcription of {!Phase3.analyze_pair} where every dynamic taint
    test becomes a static edge — then {!replay} applies the block's
    packed operations in recorded order and {!drain} runs the worklist
    to closure.  The final interned taint state is poured back into a
    {!Phase3.state} so that {!Phase3.collect_dependencies} (and the DOT
    export) are shared with the legacy engine verbatim.

    Why symbolic blocks instead of building edges directly (as PR 1
    did): a block is pure data keyed only by what the builder reads, so
    it can be (a) cached content-addressed across runs and (b) built on
    another domain.  Cold, warm and parallel runs all replay the same
    operation sequence in the same order, which is what makes their
    reports bit-identical.

    Flat layout (this PR): blocks carry small local value tables
    ([b_strs]/[b_ctxs]/[b_nodes]/[b_whys]) plus two int arrays — one
    packed descriptor per entity, one packed word per operation — so a
    cache hit deserializes straight into ints and replay translates
    local to global ids with four [Array.map]s instead of re-hashing
    structural values.  Entity keys, (function, context) pair keys and
    worklist items are all single ints; the taint hot path does no
    boxed hashing at all. *)

open Minic
module Offset = Pointsto.Offset

(* Edge modes: how taint crosses the edge and which origin is recorded.
   [mdata]/[mctrl] mirror the legacy data→data / ctrl→ctrl flows with the
   source as trace parent; [mboth] fuses a data and a ctrl edge sharing
   destination and reason (the overwhelmingly common pairing);
   [many_ctrl] mirrors the control-dependence rules, which fire on either
   taint kind and record no parent.  Encoded in 2 bits of the edge info
   word: [info = mode lor (why_id lsl 2)]. *)
let mdata = 0

let mctrl = 1

let mboth = 2

let many_ctrl = 3

(* -- Packed encodings ----------------------------------------------------------- *)

(* Entity key: tag(3) | a(20) | b(19) | c(20) — 62 bits, so the packed
   word stays a non-negative OCaml int.  The same layout serves block-
   local descriptors (a/b/c index the block's local tables) and global
   keys (a/b/c are global intern ids).  Tags: 0 Eval(fname,ctx,vid),
   1 Eparam(fname,ctx,pname), 2 Eret(fname,ctx), 3 Enode, 4 Eregion. *)
let pack_key tag a b c =
  if a lor c > 0xFFFFF || b > 0x7FFFF then failwith "Vfgraph: packed entity key overflow";
  tag lor (a lsl 3) lor (b lsl 23) lor (c lsl 42)

let key_tag k = k land 7
let key_a k = (k lsr 3) land 0xFFFFF
let key_b k = (k lsr 23) land 0x7FFFF
let key_c k = (k lsr 42) land 0xFFFFF

(* Operation word: kind(2) | x(20) | y(20) | mode(2) | why(17) — 61 bits.
   Kinds: 0 edge (x src, y dst), 1 seed (x dst, y trace parent),
   2 warning (x indexes [b_warns]), 3 discover (x local fname string id,
   y local context id). *)
let pack_op kind x y m w =
  if x lor y > 0xFFFFF || w > 0x1FFFF then failwith "Vfgraph: packed op overflow";
  kind lor (x lsl 2) lor (y lsl 22) lor (m lsl 42) lor (w lsl 44)

let op_kind o = o land 3
let op_x o = (o lsr 2) land 0xFFFFF
let op_y o = (o lsr 22) land 0xFFFFF
let op_mode o = (o lsr 42) land 3
let op_why o = (o lsr 44) land 0x1FFFF

(* Growable int buffer (amortized O(1) push, no boxing). *)
module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create n = { a = Array.make (max n 16) 0; len = 0 }

  let push t v =
    let n = t.len in
    if n = Array.length t.a then begin
      let a' = Array.make (2 * n) 0 in
      Array.blit t.a 0 a' 0 n;
      t.a <- a'
    end;
    Array.unsafe_set t.a n v;
    t.len <- n + 1

  let to_array t = Array.sub t.a 0 t.len
end

(* -- CSR adjacency --------------------------------------------------------------- *)

module Csr = struct
  type t = { off : int array; dst : int array; info : int array }

  (* Counting sort of the flat edge arrays into row-major adjacency.
     Row iteration order must reproduce the cons-list engine it
     replaces, which prepended each new edge and iterated head-first —
     i.e. each row reads in {e reverse insertion order}.  So after the
     prefix sums set [cur.(s)] to the end of row [s], edges are scanned
     {e forward} and placed back-to-front: the first-inserted edge lands
     at the row's end, the last at its start.  First-win taint origins
     (and hence witness traces) depend on this order. *)
  let build ~n ~(src : int array) ~(dst : int array) ~(info : int array) ~len =
    let off = Array.make (n + 1) 0 in
    for i = 0 to len - 1 do
      let s = Array.unsafe_get src i in
      Array.unsafe_set off s (Array.unsafe_get off s + 1)
    done;
    let cur = Array.make n 0 in
    let total = ref 0 in
    for s = 0 to n - 1 do
      let c = Array.unsafe_get off s in
      Array.unsafe_set off s !total;
      total := !total + c;
      (* row end *)
      Array.unsafe_set cur s !total
    done;
    off.(n) <- !total;
    let cdst = Array.make len 0 and cinfo = Array.make len 0 in
    for i = 0 to len - 1 do
      let s = Array.unsafe_get src i in
      let p = Array.unsafe_get cur s - 1 in
      Array.unsafe_set cur s p;
      Array.unsafe_set cdst p (Array.unsafe_get dst i);
      Array.unsafe_set cinfo p (Array.unsafe_get info i)
    done;
    { off; dst = cdst; info = cinfo }

  let degree t i = t.off.(i + 1) - t.off.(i)

  let row t i =
    List.init (degree t i) (fun j ->
        (t.dst.(t.off.(i) + j), t.info.(t.off.(i) + j)))
end

(* -- Blocks ----------------------------------------------------------------------- *)

(* A pair's symbolic edge block, fully flattened: [b_ents] holds one
   packed descriptor per distinct entity (indices into the local
   tables), [b_ops] one packed word per operation (entity operands index
   [b_ents]).  This is the cacheable unit: plain strings, contexts,
   nodes, warnings and ints — no closures, no sharing. *)
type block = {
  b_strs : string array;
  b_ctxs : Phase3.Ctx.t array;
  b_nodes : Pointsto.Node.t array;
  b_whys : string array;
  b_ents : int array;
  b_ops : int array;
  b_warns : Report.warning array;
}

(* Per-function facts that do not depend on the monitoring context. *)
type finfo = {
  fi_func : Ssair.Ir.func;
  fi_blocks : Ssair.Ir.block option array;  (** indexed by block id *)
  fi_maxbid : int;  (** max block id — sizes per-pair bid-indexed scratch *)
  fi_bi : Phase3.brinfo;  (** undecided branches + CDG closures (shared memo) *)
  fi_nvals : int;  (** max SSA vid + 1 — sizes the builder's vid→entity cache *)
}

(* -- Static why table ---------------------------------------------------------- *)

(* Origin reasons known at compile time are referenced by their index in
   this table; a block's local why table holds only dynamically
   formatted reasons, and its indices are offset by [n_static_whys].
   The table is part of the cached "pair" block format — reordering or
   editing an entry requires a {!Cache.format_version} bump. *)
let static_whys =
  [|
    "phi merge";
    "phi merges paths controlled by an unsafe condition";
    "read of core region holding an unsafe value";
    "load from unsafe memory object";
    "load from control-unsafe memory object";
    "load through unsafe pointer";
    "unsafe value stored";
    "control-unsafe value stored";
    "store controlled by an unsafe condition";
    "arithmetic";
    "cast";
    "address arithmetic";
    "call controlled by an unsafe condition";
    "data received from a non-core component";
    "returned";
    "returned value selected by an unsafe condition";
  |]

let n_static_whys = Array.length static_whys

(* indices into [static_whys] *)
let w_phi = 0
let w_phi_ctrl = 1
let w_core_read = 2
let w_load_unsafe = 3
let w_load_ctrl_unsafe = 4
let w_load_ptr = 5
let w_store_d = 6
let w_store_c = 7
let w_store_ctrl = 8
let w_arith = 9
let w_cast = 10
let w_addr = 11
let w_call_ctrl = 12
let w_recv = 13
let w_ret = 14
let w_ret_ctrl = 15

type t = {
  st : Phase3.state;  (** receptacle for pairs/warnings/taints *)
  ctxs : Intern.Ctx.store;
  strs : string Intern.t;
  nodes : Pointsto.Node.t Intern.t;
  whys : string Intern.t;  (** origin reasons, so per-entity whys are ints *)
  static_wids : int array;  (** global why id per {!static_whys} index *)
  keys : Intern.Packed.t;  (** packed entity key → dense entity id *)
  finfos : (string, finfo) Hashtbl.t;
  pairs_seen : Intern.Packed.t;  (** packed (fname id lsl 20) lor ctx id *)
  pending : (Ssair.Ir.func * int) Queue.t;  (** discovered, to build *)
  funcs_by_name : (string, Ssair.Ir.func) Hashtbl.t;
      (** [Ssair.Ir.find_func] is a linear scan; call sites resolve
          callees once per visit, so index the program up front *)
  own_lists : (string, Phase3.Ctx.t) Hashtbl.t;
      (** canonical own-assumption context per function — needed at every
          call site; prewarmed on the main domain before parallel builds *)
  p1_regs : (string, (Ssair.Ir.vid, Phase1.Rset.t) Hashtbl.t) Hashtbl.t;
      (** phase-1 register facts re-bucketed per function: the walk's
          per-instruction lookups hash an int instead of a
          [(fname, vid)] tuple.  Built once in {!create}; read-only. *)
  pts_regs : (string, (Ssair.Ir.vid, Pointsto.Tset.t) Hashtbl.t) Hashtbl.t;
      (** points-to register facts per function, same layout *)
  prewarmed : (string, unit) Hashtbl.t;  (** functions already prewarmed *)
  (* worklist FIFO of codes [entity id * 2 + (ctrl ? 1 : 0)]; drained
     once after all waves, so a plain append-only array suffices *)
  mutable wl : int array;
  mutable wl_head : int;
  mutable wl_tail : int;
  (* parallel per-entity arrays, grown together by {!ensure_cap} *)
  mutable rev : Phase3.entity array;
  data : Bitset.t;
  ctrl : Bitset.t;
  mutable d_parent : int array;  (** -1 = no parent *)
  mutable c_parent : int array;
  mutable d_why : int array;  (** why ids, valid iff the taint bit is set *)
  mutable c_why : int array;
  (* flat edge arrays in insertion order; finalized into [csr] once all
     blocks are replayed (no edges appear during the drain) *)
  mutable es : int array;
  mutable ed : int array;
  mutable einfo : int array;
  mutable n_edges : int;
  mutable csr : Csr.t;
  mutable n_pops : int;
  mutable n_pushes : int;
}

(* Counter inventory (registered at module init so the names exist in
   every stats snapshot, even as zeros under the legacy engine). *)
let c_wl_pushes = Telemetry.counter "vf.worklist_pushes"
let c_wl_pops = Telemetry.counter "vf.worklist_pops"
let c_edges = Telemetry.counter "vf.edges_built"
let c_entities = Telemetry.counter "vf.entities"
let c_contexts = Telemetry.counter "vf.contexts"
let c_pair_replayed = Telemetry.counter "vf.pair_blocks_replayed"
let c_pair_built = Telemetry.counter "vf.pair_blocks_built"
let c_csr_build_us = Telemetry.counter "vf.csr_build_us"
let c_bitset_words = Telemetry.counter "vf.bitset_words"
let c_drain_edges_per_sec = Telemetry.counter "vf.drain_edges_per_sec"
let c_pair_tasks = Telemetry.counter "pool.pair_tasks"
let c_pair_peak = Telemetry.gauge "pool.pair_peak"
let h_pair_build = Telemetry.histogram "pair.build"

let create st =
  let funcs_by_name = st.Phase3.fidx in
  let whys = Intern.create 64 in
  (* size the flat stores from the function count so typical runs never
     grow mid-build (≈10 entities and ≈15 edges per function in
     practice); everything still grows on demand for denser programs *)
  let nfuncs = Hashtbl.length st.Phase3.fidx in
  let ecap = max 1024 (10 * nfuncs) in
  let edgecap = max 1024 (14 * nfuncs) in
  let bucket tbl fname k v =
    let t =
      match Hashtbl.find_opt tbl fname with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.add tbl fname t;
        t
    in
    Hashtbl.replace t k v
  in
  let p1_regs = Hashtbl.create (2 * nfuncs) in
  Hashtbl.iter
    (fun (fname, vid) rs -> bucket p1_regs fname vid rs)
    st.Phase3.p1.Phase1.facts;
  let pts_regs = Hashtbl.create (2 * nfuncs) in
  Pointsto.fold_pts
    (fun k ts () ->
      match k with
      | Pointsto.Kreg (fname, vid) -> bucket pts_regs fname vid ts
      | _ -> ())
    st.Phase3.pts ();
  {
    st;
    funcs_by_name;
    own_lists = Hashtbl.create 64;
    p1_regs;
    pts_regs;
    prewarmed = Hashtbl.create 64;
    ctxs = Intern.Ctx.create ();
    strs = Intern.create 64;
    nodes = Intern.create 64;
    whys;
    static_wids = Array.map (Intern.intern whys) static_whys;
    keys = Intern.Packed.create ecap;
    finfos = Hashtbl.create (2 * nfuncs);
    pairs_seen = Intern.Packed.create (2 * nfuncs);
    pending = Queue.create ();
    wl = Array.make (max 1024 (ecap / 2)) 0;
    wl_head = 0;
    wl_tail = 0;
    rev = Array.make ecap (Phase3.Eregion "");
    data = Bitset.create ecap;
    ctrl = Bitset.create ecap;
    d_parent = Array.make ecap (-1);
    c_parent = Array.make ecap (-1);
    d_why = Array.make ecap (-1);
    c_why = Array.make ecap (-1);
    es = Array.make edgecap 0;
    ed = Array.make edgecap 0;
    einfo = Array.make edgecap 0;
    n_edges = 0;
    csr = Csr.{ off = [| 0 |]; dst = [||]; info = [||] };
    n_pops = 0;
    n_pushes = 0;
  }

let ensure_cap g n =
  let cap = Array.length g.rev in
  if n > cap then begin
    let cap' = max 256 (max n (2 * cap)) in
    let grow_arr dummy a =
      let a' = Array.make cap' dummy in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.rev <- grow_arr (Phase3.Eregion "") g.rev;
    g.d_parent <- grow_arr (-1) g.d_parent;
    g.c_parent <- grow_arr (-1) g.c_parent;
    g.d_why <- grow_arr (-1) g.d_why;
    g.c_why <- grow_arr (-1) g.c_why;
    Bitset.ensure g.data cap';
    Bitset.ensure g.ctrl cap'
  end

(* -- Taint setting and propagation -------------------------------------------- *)

let data_tainted g eid = Bitset.get g.data eid
let ctrl_tainted g eid = Bitset.get g.ctrl eid

let wl_push g code =
  let n = g.wl_tail in
  if n = Array.length g.wl then begin
    let a' = Array.make (2 * n) 0 in
    Array.blit g.wl 0 a' 0 n;
    g.wl <- a'
  end;
  Array.unsafe_set g.wl n code;
  g.wl_tail <- n + 1

let set_data g eid ~parent ~why =
  if not (Bitset.get g.data eid) then begin
    Bitset.set g.data eid;
    g.d_parent.(eid) <- parent;
    g.d_why.(eid) <- why;
    g.n_pushes <- g.n_pushes + 1;
    wl_push g (eid * 2)
  end

let set_ctrl g eid ~parent ~why =
  if not (Bitset.get g.ctrl eid) then begin
    Bitset.set g.ctrl eid;
    g.c_parent.(eid) <- parent;
    g.c_why.(eid) <- why;
    g.n_pushes <- g.n_pushes + 1;
    wl_push g ((eid * 2) + 1)
  end

(** Append an edge and replay the source's current taint across it, so
    edges built after their source was tainted still fire.  [why] is a
    global why id. *)
let add_edge g src dst mode why =
  let n = g.n_edges in
  if n = Array.length g.es then begin
    let grow a =
      let a' = Array.make (2 * n) 0 in
      Array.blit a 0 a' 0 n;
      a'
    in
    g.es <- grow g.es;
    g.ed <- grow g.ed;
    g.einfo <- grow g.einfo
  end;
  Array.unsafe_set g.es n src;
  Array.unsafe_set g.ed n dst;
  Array.unsafe_set g.einfo n (mode lor (why lsl 2));
  g.n_edges <- n + 1;
  if mode = mdata then begin
    if data_tainted g src then set_data g dst ~parent:src ~why
  end
  else if mode = mctrl then begin
    if ctrl_tainted g src then set_ctrl g dst ~parent:src ~why
  end
  else if mode = mboth then begin
    if data_tainted g src then set_data g dst ~parent:src ~why;
    if ctrl_tainted g src then set_ctrl g dst ~parent:src ~why
  end
  else if data_tainted g src || ctrl_tainted g src then set_ctrl g dst ~parent:(-1) ~why

(* All blocks are replayed (hence all edges exist) before the single
   drain, so the CSR is finalized exactly once in between. *)
let finalize_csr g =
  let t0 = Telemetry.now_ns () in
  g.csr <-
    Csr.build ~n:(Intern.Packed.length g.keys) ~src:g.es ~dst:g.ed ~info:g.einfo
      ~len:g.n_edges;
  Telemetry.add c_csr_build_us
    (Int64.to_int (Int64.div (Int64.sub (Telemetry.now_ns ()) t0) 1000L))

let drain g =
  let t0 = Telemetry.now_ns () in
  let traversed = ref 0 in
  let off = g.csr.Csr.off and dst = g.csr.Csr.dst and info = g.csr.Csr.info in
  while g.wl_head < g.wl_tail do
    let code = Array.unsafe_get g.wl g.wl_head in
    g.wl_head <- g.wl_head + 1;
    g.n_pops <- g.n_pops + 1;
    let eid = code lsr 1 in
    let lo = Array.unsafe_get off eid and hi = Array.unsafe_get off (eid + 1) in
    traversed := !traversed + (hi - lo);
    if code land 1 = 0 then
      for j = lo to hi - 1 do
        let w = Array.unsafe_get info j in
        let m = w land 3 in
        if m = mdata || m = mboth then
          set_data g (Array.unsafe_get dst j) ~parent:eid ~why:(w lsr 2)
        else if m = many_ctrl then
          set_ctrl g (Array.unsafe_get dst j) ~parent:(-1) ~why:(w lsr 2)
      done
    else
      for j = lo to hi - 1 do
        let w = Array.unsafe_get info j in
        let m = w land 3 in
        if m = mctrl || m = mboth then
          set_ctrl g (Array.unsafe_get dst j) ~parent:eid ~why:(w lsr 2)
        else if m = many_ctrl then
          set_ctrl g (Array.unsafe_get dst j) ~parent:(-1) ~why:(w lsr 2)
      done
  done;
  let dur_ns = Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0) in
  if Telemetry.enabled () && dur_ns > 0 then
    Telemetry.add c_drain_edges_per_sec (!traversed * 1_000_000_000 / dur_ns)

(* -- Static per-function facts ------------------------------------------------- *)

(* [own_list]/[finfo] memoize into [g] (and [Phase3.branch_info] into
   the shared state) and must only run on the main domain;
   {!prewarm_wave} populates the tables for a wave before any worker
   touches them read-only. *)

let own_list g (f : Ssair.Ir.func) : Phase3.Ctx.t =
  match Hashtbl.find_opt g.own_lists f.Ssair.Ir.fname with
  | Some l -> l
  | None ->
    let l = Phase3.Ctx.make (Phase3.own_assumptions g.st f) in
    Hashtbl.replace g.own_lists f.Ssair.Ir.fname l;
    l

let finfo g (f : Ssair.Ir.func) : finfo =
  match Hashtbl.find_opt g.finfos f.Ssair.Ir.fname with
  | Some fi -> fi
  | None ->
    let fi_bi = Phase3.branch_info g.st f in
    let nvals = ref 0 in
    let maxbid = ref (-1) in
    List.iter
      (fun (b : Ssair.Ir.block) ->
        if b.Ssair.Ir.bbid > !maxbid then maxbid := b.Ssair.Ir.bbid;
        List.iter
          (fun (p : Ssair.Ir.phi) ->
            if p.Ssair.Ir.pid >= !nvals then nvals := p.Ssair.Ir.pid + 1)
          b.Ssair.Ir.phis;
        List.iter
          (fun (i : Ssair.Ir.instr) ->
            if i.Ssair.Ir.iid >= !nvals then nvals := i.Ssair.Ir.iid + 1)
          b.Ssair.Ir.instrs)
      f.Ssair.Ir.blocks;
    let fi_blocks = Array.make (!maxbid + 1) None in
    (* later duplicate bbids win, as Hashtbl.replace did *)
    List.iter
      (fun (b : Ssair.Ir.block) -> fi_blocks.(b.Ssair.Ir.bbid) <- Some b)
      f.Ssair.Ir.blocks;
    let fi = { fi_func = f; fi_blocks; fi_maxbid = !maxbid; fi_bi; fi_nvals = !nvals } in
    Hashtbl.replace g.finfos f.Ssair.Ir.fname fi;
    fi

(* -- Pair discovery ------------------------------------------------------------ *)

let discover_pair g (f : Ssair.Ir.func) cid =
  let fid = Intern.intern g.strs f.Ssair.Ir.fname in
  if cid > 0xFFFFF then failwith "Vfgraph: context id overflow (packed pair key)";
  let pkey = (fid lsl 20) lor cid in
  let n = Intern.Packed.length g.pairs_seen in
  if Intern.Packed.intern g.pairs_seen pkey = n then begin
    Hashtbl.replace g.st.Phase3.pairs (f.Ssair.Ir.fname, Intern.Ctx.get g.ctxs cid) ();
    if not (Phase1.is_exempt g.st.Phase3.p1 f.Ssair.Ir.fname) then
      Queue.push (f, cid) g.pending
  end

(* -- Building one (function, context) pair ------------------------------------- *)

(* What the builder memoizes per distinct callee of the pair: the callee
   context, parameter/return entities and formatted reasons are the same
   at every call site, so they are computed once (including the one
   [Ctx.union]) instead of per site. *)
type cmemo =
  | Cdefined of {
      cm_params : int array;  (** entity id per parameter position *)
      cm_ret : int;
      cm_why_args : int array;  (** why id per parameter position *)
      cm_why_ret : int;
    }
  | Cextern of { cm_why_ext : int }

(* Where the walk sends what it finds.  Two implementations: the block
   sink interns into block-local tables and buffers packed ops (the
   cacheable, worker-safe path), the direct sink interns into the
   graph's global tables and applies each op immediately (the
   sequential cache-less fast path — no block record, no replay
   translation). *)
type sink = {
  s_sid : string -> int;
  s_cid : Phase3.Ctx.t -> int;
  s_wid : string -> int;  (** dynamically formatted reason *)
  s_swids : int array;  (** why id per {!static_whys} index *)
  s_nid : Pointsto.Node.t -> int;
  s_ent_val : int -> int -> int -> int;  (** fname id, ctx id, vid *)
  s_ent_param : int -> int -> int -> int;  (** fname id, ctx id, param-name id *)
  s_ent_ret : int -> int -> int;  (** fname id, ctx id *)
  s_ent_node : int -> int;
  s_ent_region : int -> int;
  s_edge : int -> int -> int -> int -> unit;  (** src, dst, mode, why *)
  s_seed : int -> int -> int -> unit;  (** dst, parent, why *)
  s_warn : Report.warning -> unit;
  s_discover : Ssair.Ir.func -> int -> unit;  (** callee, [s_cid] of its context *)
  s_callee_cid : Phase3.Ctx.t -> int -> Ssair.Ir.func -> int;
      (** caller context, caller [s_cid], callee — [s_cid] of the callee
          context (own assumptions, unioned with the caller context when
          context-sensitive).  The direct sink resolves this at the
          context-id level through the memoized {!Intern.Ctx.union},
          never materializing the union list. *)
  s_cmemo : Phase3.Ctx.t -> int -> string -> cmemo;
      (** caller context, caller [s_cid], callee name — the direct sink
          memoizes this across pairs (see {!direct_sink}) *)
  s_call_whys : int -> string -> int -> int array * int;
      (** callee [s_sid], name, arity — why ids for the per-argument and
          return-value reasons.  Context-independent, so the direct sink
          memoizes the formatted strings per callee string id. *)
  s_why_ext : string -> int;  (** "through external call" reason *)
}

(** Transcribe [f] under context [ctx] through [sk]; the static taint
    sources of the pair (unmonitored non-core reads, non-core recv
    buffers) become seeds.  Edge-for-rule correspondence with
    {!Phase3.analyze_pair} is documented inline.

    With a block sink this is pure with respect to [g]: it reads only
    [st] (immutable analysis inputs), [funcs_by_name], and the prewarmed
    [finfos]/[own_lists] tables — safe to run on a worker domain. *)
let walk_pair g (sk : sink) (f : Ssair.Ir.func) (ctx : Phase3.Ctx.t) ~self_cid : unit =
  let st = g.st in
  let config = st.Phase3.config in
  let env = st.Phase3.prog.Ssair.Ir.env in
  let fname = f.Ssair.Ir.fname in
  let fi = finfo g f in
  let sid = sk.s_sid in
  let wid = sk.s_wid in
  let sw = sk.s_swids in
  let edge = sk.s_edge in
  let seed = sk.s_seed in
  let self_fid = sid fname in
  (* vid → entity id, O(1) on the hottest entity kind *)
  let val_idx = Array.make (max fi.fi_nvals 1) (-1) in
  let eval vid =
    if vid < Array.length val_idx then begin
      let i = Array.unsafe_get val_idx vid in
      if i >= 0 then i
      else begin
        let i = sk.s_ent_val self_fid self_cid vid in
        Array.unsafe_set val_idx vid i;
        i
      end
    end
    else sk.s_ent_val self_fid self_cid vid
  in
  (* -1 = no entity (constants); avoids an option box per operand *)
  let value_eid (v : Ssair.Ir.value) =
    match v with
    | Ssair.Ir.Vreg id -> eval id
    | Ssair.Ir.Vparam p -> sk.s_ent_param self_fid self_cid (sid p)
    | _ -> -1
  in
  let node_ent n = sk.s_ent_node (sk.s_nid n) in
  let region_ent r = sk.s_ent_region (sid r) in
  (* per-function fact views (see [p1_regs]/[pts_regs]): register
     lookups hash an int; anything else falls back to the generic
     tuple-keyed path, byte-for-byte equivalent *)
  let fn_p1regs = Hashtbl.find_opt g.p1_regs fname in
  let fn_ptsregs = Hashtbl.find_opt g.pts_regs fname in
  let shm_of (v : Ssair.Ir.value) =
    match v with
    | Ssair.Ir.Vreg id -> (
      match fn_p1regs with
      | Some t -> Option.value ~default:Phase1.Rset.empty (Hashtbl.find_opt t id)
      | None -> Phase1.Rset.empty)
    | _ -> Phase1.shm_targets st.Phase3.p1 f v
  in
  let pts_of (v : Ssair.Ir.value) =
    match v with
    | Ssair.Ir.Vreg id -> (
      match fn_ptsregs with
      | Some t -> Option.value ~default:Pointsto.Tset.empty (Hashtbl.find_opt t id)
      | None -> Pointsto.Tset.empty)
    | _ -> Pointsto.points_to st.Phase3.pts f v
  in
  (* defs are only consulted to resolve recv sockets, so built on demand *)
  let defs = lazy (Ssair.Ir.def_table f) in
  let callees : (string, cmemo) Hashtbl.t = Hashtbl.create 8 in
  (* control-dependence targets per block: entity that gains ctrl-taint
     (with the given reason) when the block executes under a tainted
     branch; wired to branch conditions after the walk *)
  let ctrl_targets : (int * int) list array = Array.make (fi.fi_maxbid + 1) [] in
  (* targets filed under a bid with no block are never wired (closures
     only hold real blocks), so they are safely dropped *)
  let add_ct bid eid why =
    if bid >= 0 && bid <= fi.fi_maxbid then
      ctrl_targets.(bid) <- (eid, why) :: ctrl_targets.(bid)
  in
  let flow1 self v why =
    let ve = value_eid v in
    if ve >= 0 then edge ve self mboth why
  in
  let flow_operands self vs why = List.iter (fun v -> flow1 self v why) vs in
  List.iter
    (fun (b : Ssair.Ir.block) ->
      let bid = b.Ssair.Ir.bbid in
      (* phis: data/ctrl from incomings; implicit flow from the branches
         controlling the merge *)
      List.iter
        (fun (p : Ssair.Ir.phi) ->
          let self = eval p.Ssair.Ir.pid in
          List.iter (fun (_, v) -> flow1 self v sw.(w_phi)) p.Ssair.Ir.incoming;
          if config.Config.control_deps then begin
            let why = sw.(w_phi_ctrl) in
            add_ct bid self why;
            List.iter
              (fun (pred, _) ->
                add_ct pred self why;
                match
                  (if pred >= 0 && pred <= fi.fi_maxbid then fi.fi_blocks.(pred) else None)
                with
                | Some pblk -> (
                  match pblk.Ssair.Ir.termin with
                  | Ssair.Ir.Cbr (Ssair.Ir.Vreg cvid, _, _)
                  | Ssair.Ir.Switch (Ssair.Ir.Vreg cvid, _, _) ->
                    if not (Phase3.branch_decided st f pblk) then
                      edge (eval cvid) self many_ctrl why
                  | _ -> ())
                | None -> ())
              p.Ssair.Ir.incoming
          end)
        b.Ssair.Ir.phis;
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          (* [self] is interned per arm: stores and allocas produce no
             value flow, so their entities would only bloat the tables *)
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Alloca _ | Ssair.Ir.Annotation _ -> ()
          | Ssair.Ir.Load { ptr; lty } ->
            let self = eval i.Ssair.Ir.iid in
            (* 1. shared-memory reads: static source (warning) when the
               context leaves a non-core target uncovered; edge from the
               region node for covered core regions *)
            let shm_targets = shm_of ptr in
            Phase1.Rset.iter
              (fun tgt ->
                let rname = tgt.Phase1.Rtgt.region in
                match Shm.region st.Phase3.shm rname with
                | None -> ()
                | Some r ->
                  if r.Shm.r_noncore then begin
                    let covered =
                      match tgt.Phase1.Rtgt.off with
                      | Offset.Byte byte ->
                        Phase3.Ctx.covers_region ctx rname ~lo:byte
                          ~hi:(byte + Ty.sizeof env lty)
                      | Offset.Top -> Phase3.Ctx.covers_region ctx rname ~lo:0 ~hi:r.Shm.r_size
                    in
                    if not covered then begin
                      sk.s_warn
                        {
                          Report.w_func = fname;
                          w_region = rname;
                          w_loc = i.Ssair.Ir.iloc;
                          w_context = Phase3.Ctx.names ctx;
                        };
                      seed self (region_ent rname)
                        (wid
                           (Fmt.str "unmonitored read of non-core region %s at %a" rname
                              Loc.pp i.Ssair.Ir.iloc))
                    end
                  end
                  else begin
                    let node = Pointsto.Node.Nshm rname in
                    if not (Phase3.Ctx.covers_node ctx node) then
                      edge (node_ent node) self mdata sw.(w_core_read)
                  end)
              shm_targets;
            (* 2. ordinary memory (cf. the shm/ordinary split in the
               legacy engine) *)
            if Phase1.Rset.is_empty shm_targets then
              Pointsto.Tset.iter
                (fun tgt ->
                  let node = tgt.Pointsto.Target.node in
                  if not (Phase3.Ctx.covers_node ctx node) then begin
                    let ne = node_ent node in
                    edge ne self mdata sw.(w_load_unsafe);
                    edge ne self mctrl sw.(w_load_ctrl_unsafe)
                  end)
                (pts_of ptr);
            (* 3. tainted address *)
            flow1 self ptr sw.(w_load_ptr)
          | Ssair.Ir.Store { ptr; sval; _ } ->
            let target_nodes =
              let shm = shm_of ptr in
              if Phase1.Rset.is_empty shm then
                Pointsto.Tset.fold
                  (fun tgt acc -> node_ent tgt.Pointsto.Target.node :: acc)
                  (pts_of ptr)
                  []
              else
                Phase1.Rset.fold
                  (fun tgt acc ->
                    node_ent (Pointsto.Node.Nshm tgt.Phase1.Rtgt.region) :: acc)
                  shm []
            in
            (let ve = value_eid sval in
             if ve >= 0 then
               List.iter
                 (fun ne ->
                   edge ve ne mdata sw.(w_store_d);
                   edge ve ne mctrl sw.(w_store_c))
                 target_nodes);
            if config.Config.control_deps then begin
              List.iter (fun ne -> add_ct bid ne sw.(w_store_ctrl)) target_nodes
            end
          | Ssair.Ir.Binop { lhs; rhs; _ } ->
            let self = eval i.Ssair.Ir.iid in
            flow1 self lhs sw.(w_arith);
            flow1 self rhs sw.(w_arith)
          | Ssair.Ir.Unop { operand; _ } -> flow1 (eval i.Ssair.Ir.iid) operand sw.(w_arith)
          | Ssair.Ir.Cast { cval; _ } -> flow1 (eval i.Ssair.Ir.iid) cval sw.(w_cast)
          | Ssair.Ir.Gep { base; idx; _ } ->
            let self = eval i.Ssair.Ir.iid in
            flow1 self base sw.(w_addr);
            flow1 self idx sw.(w_addr)
          | Ssair.Ir.Call { callee; args; _ } -> (
            let self = eval i.Ssair.Ir.iid in
            let cm =
              match Hashtbl.find_opt callees callee with
              | Some cm -> cm
              | None ->
                (* first sight of this callee in the pair: for a defined
                   callee the memo computation also emits the discover op
                   — the old per-site repeats were deduplicated at
                   replay, so keeping only the first site's op is
                   equivalent *)
                let cm = sk.s_cmemo ctx self_cid callee in
                Hashtbl.replace callees callee cm;
                cm
            in
            match cm with
            | Cdefined cm ->
              List.iteri
                (fun k arg ->
                  if k < Array.length cm.cm_params then begin
                    let pe = cm.cm_params.(k) in
                    (let ve = value_eid arg in
                     if ve >= 0 then edge ve pe mboth cm.cm_why_args.(k));
                    if config.Config.control_deps then
                      add_ct bid pe sw.(w_call_ctrl)
                  end)
                args;
              edge cm.cm_ret self mboth cm.cm_why_ret
            | Cextern cm ->
              if List.mem callee config.Config.recv_functions then begin
                let socket_is_noncore =
                  match args with
                  | sock :: _ -> (
                    match sock with
                    | Ssair.Ir.Vparam p -> Hashtbl.mem st.Phase3.noncore_sockets p
                    | Ssair.Ir.Vreg id -> (
                      match Hashtbl.find_opt (Lazy.force defs) id with
                      | Some
                          (Ssair.Ir.Def_instr
                             ( { idesc = Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal gl; _ }; _ },
                               _ )) ->
                        Hashtbl.mem st.Phase3.noncore_sockets gl
                      | _ -> false)
                    | _ -> false)
                  | [] -> false
                in
                if socket_is_noncore then
                  match args with
                  | _ :: buf :: _ ->
                    let w = sw.(w_recv) in
                    Pointsto.Tset.iter
                      (fun tgt ->
                        seed
                          (node_ent tgt.Pointsto.Target.node)
                          (region_ent (Fmt.str "socket via %s" callee))
                          w)
                      (pts_of buf)
                  | _ -> ()
              end;
              flow_operands self args cm.cm_why_ext))
        b.Ssair.Ir.instrs;
      match b.Ssair.Ir.termin with
      | Ssair.Ir.Ret (Some v) ->
        let re = sk.s_ent_ret self_fid self_cid in
        (let ve = value_eid v in
         if ve >= 0 then edge ve re mboth sw.(w_ret));
        if config.Config.control_deps then
          add_ct bid re sw.(w_ret_ctrl)
      | _ -> ())
    f.Ssair.Ir.blocks;
  (* wire branch conditions to the control-dependence targets of every
     block in their controls-closure (Phase3.block_control_taint made
     sparse: the closure is static, only the cond's taint is dynamic) *)
  List.iter
    (fun (_bB, cvid, closure) ->
      let c = eval cvid in
      List.iter
        (fun d ->
          if d >= 0 && d <= fi.fi_maxbid then
            List.iter (fun (teid, why) -> edge c teid many_ctrl why) ctrl_targets.(d))
        closure)
    fi.fi_bi.Phase3.br_branches

(** Compute a callee memo through [sk]: callee context (own assumptions,
    unioned with the caller context when context-sensitive), parameter
    and return entities, and the formatted reasons.  Everything here
    depends only on the caller context and the callee, never on the rest
    of the calling pair, which is what lets the direct sink memoize the
    result across pairs. *)
let compute_cmemo g (sk : sink) ctx self_cid callee : cmemo =
  match Hashtbl.find_opt g.funcs_by_name callee with
  | Some gfn ->
    let gfid = sk.s_sid gfn.Ssair.Ir.fname in
    let gcid = sk.s_callee_cid ctx self_cid gfn in
    sk.s_discover gfn gcid;
    let cm_params =
      Array.of_list
        (List.map
           (fun (pname, _) -> sk.s_ent_param gfid gcid (sk.s_sid pname))
           gfn.Ssair.Ir.fparams)
    in
    let cm_why_args, cm_why_ret = sk.s_call_whys gfid callee (Array.length cm_params) in
    Cdefined { cm_params; cm_ret = sk.s_ent_ret gfid gcid; cm_why_args; cm_why_ret }
  | None -> Cextern { cm_why_ext = sk.s_why_ext callee }

(* identity mapping: a block's static why ids are the indices themselves *)
let static_self_ids = Array.init n_static_whys Fun.id

(** Transcribe [f] under [ctx] into a position-independent flat edge
    block (the cacheable, worker-safe form). *)
let build_pair_block g (f : Ssair.Ir.func) (ctx : Phase3.Ctx.t) : block =
  (* block-local value tables; indices are what the packed descriptors
     and ops carry *)
  let lstrs = Intern.create 16 in
  let lctxs = Intern.create 4 in
  let lnodes = Intern.create 16 in
  let lwhys = Intern.create 32 in
  (* block-local entity table: packed descriptor ↦ dense index *)
  let lents = Intern.Packed.create 64 in
  let ents_buf = Ibuf.create 64 in
  let ops_buf = Ibuf.create 256 in
  let warns = ref [] in
  let n_warns = ref 0 in
  let ent_key k =
    let n = Intern.Packed.length lents in
    let i = Intern.Packed.intern lents k in
    if i = n then Ibuf.push ents_buf k;
    i
  in
  let rec sk =
    {
      s_sid = (fun x -> Intern.intern lstrs x);
      s_cid = (fun c -> Intern.intern lctxs c);
      (* dynamically formatted reasons only; compile-time constants are
         their [static_whys] index (below [n_static_whys]) *)
      s_wid = (fun x -> n_static_whys + Intern.intern lwhys x);
      s_swids = static_self_ids;
      s_nid = (fun n -> Intern.intern lnodes n);
      s_ent_val = (fun fid cid vid -> ent_key (pack_key 0 fid cid vid));
      s_ent_param = (fun fid cid pid -> ent_key (pack_key 1 fid cid pid));
      s_ent_ret = (fun fid cid -> ent_key (pack_key 2 fid cid 0));
      s_ent_node = (fun nid -> ent_key (pack_key 3 nid 0 0));
      s_ent_region = (fun rid -> ent_key (pack_key 4 rid 0 0));
      s_edge = (fun src dst mode why -> Ibuf.push ops_buf (pack_op 0 src dst mode why));
      s_seed = (fun dst parent why -> Ibuf.push ops_buf (pack_op 1 dst parent 0 why));
      s_warn =
        (fun w ->
          Ibuf.push ops_buf (pack_op 2 !n_warns 0 0 0);
          warns := w :: !warns;
          incr n_warns);
      s_discover =
        (fun gfn gcid ->
          Ibuf.push ops_buf (pack_op 3 (Intern.intern lstrs gfn.Ssair.Ir.fname) gcid 0 0));
      s_callee_cid =
        (fun ctx _self_cid gfn ->
          let own = Hashtbl.find g.own_lists gfn.Ssair.Ir.fname in
          Intern.intern lctxs
            (if g.st.Phase3.config.Config.context_sensitive then Phase3.Ctx.union ctx own
             else own));
      (* block-local tables can't be shared across pairs, so no memo *)
      s_cmemo = (fun ctx self_cid callee -> compute_cmemo g sk ctx self_cid callee);
      s_call_whys =
        (fun _fid callee nargs ->
          ( Array.init nargs (fun k ->
                sk.s_wid ("argument " ^ string_of_int k ^ " of call to " ^ callee)),
            sk.s_wid ("return value of " ^ callee) ));
      s_why_ext = (fun callee -> sk.s_wid ("through external call " ^ callee));
    }
  in
  walk_pair g sk f ctx ~self_cid:(Intern.intern lctxs ctx);
  {
    b_strs = Intern.to_array lstrs;
    b_ctxs = Intern.to_array lctxs;
    b_nodes = Intern.to_array lnodes;
    b_whys = Intern.to_array lwhys;
    b_ents = Ibuf.to_array ents_buf;
    b_ops = Ibuf.to_array ops_buf;
    b_warns = Array.of_list (List.rev !warns);
  }

(* -- Replaying a block into the live graph ------------------------------------- *)

(* Warning dedup by (loc, region) — mirrors Phase3.warn, but the record
   was already formatted at build time. *)
let record_warning g (w : Report.warning) =
  let key = (w.Report.w_loc, w.Report.w_region) in
  if not (Hashtbl.mem g.st.Phase3.warnings key) then
    Hashtbl.replace g.st.Phase3.warnings key w

(** Sink that emits a pair's edges straight into the live graph: global
    intern tables, immediate op application — no local tables, no block
    record, no replay translation.  Only valid sequentially on the main
    domain with no cache attached (the cached path must produce a
    position-independent {!block} to store); applies the same ops in the
    same order as [build_pair_block] followed by [replay], so taints,
    origins and discoveries are identical.

    The sink is pair-independent: built once per run and reused for
    every pending pair.  That lets it memoize callee memos across pairs,
    keyed by (callee fname id, caller context id) — with few distinct
    contexts most pairs hit the memo, skipping the context union,
    reason formatting and parameter-entity interning entirely.  A hit is
    emission-free, exactly like the recomputation it replaces: entity
    interning is idempotent and the discover for that (callee, context)
    already ran when the memo was filled. *)
let direct_sink g : sink =
  let ent gkey mk =
    let n = Intern.Packed.length g.keys in
    let id = Intern.Packed.intern g.keys gkey in
    if id = n then begin
      ensure_cap g (n + 1);
      g.rev.(id) <- mk ()
    end;
    id
  in
  let cmemo_tbl : (int, cmemo) Hashtbl.t = Hashtbl.create 256 in
  let own_cids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  (* call/extern reasons depend only on the callee, never on the calling
     context — format and intern them once per callee (keyed by its
     string id) *)
  let call_whys : (int, int array * int) Hashtbl.t = Hashtbl.create 64 in
  let ext_whys : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* node/region entities are context-free, so their dense ids are
     cached per node/string id — no packed-key interning on the hot
     Load/Store path after first sight *)
  let node_eids = ref (Array.make 64 (-1)) in
  let region_eids = ref (Array.make 64 (-1)) in
  let slot cache i =
    let a = !cache in
    if i < Array.length a then a
    else begin
      let a' = Array.make (max (i + 1) (2 * Array.length a)) (-1) in
      Array.blit a 0 a' 0 (Array.length a);
      cache := a';
      a'
    end
  in
  let rec sk =
    {
      s_sid = (fun x -> Intern.intern g.strs x);
      s_cid = (fun c -> Intern.Ctx.intern g.ctxs c);
      s_wid = (fun x -> Intern.intern g.whys x);
      s_swids = g.static_wids;
      s_nid = (fun n -> Intern.intern g.nodes n);
      s_ent_val =
        (fun fid cid vid ->
          ent (pack_key 0 fid cid vid) (fun () ->
              Phase3.Eval (Intern.get g.strs fid, Intern.Ctx.get g.ctxs cid, vid)));
      s_ent_param =
        (fun fid cid pid ->
          ent (pack_key 1 fid cid pid) (fun () ->
              Phase3.Eparam
                (Intern.get g.strs fid, Intern.Ctx.get g.ctxs cid, Intern.get g.strs pid)));
      s_ent_ret =
        (fun fid cid ->
          ent (pack_key 2 fid cid 0) (fun () ->
              Phase3.Eret (Intern.get g.strs fid, Intern.Ctx.get g.ctxs cid)));
      s_ent_node =
        (fun nid ->
          let a = slot node_eids nid in
          let v = Array.unsafe_get a nid in
          if v >= 0 then v
          else begin
            let v = ent (pack_key 3 nid 0 0) (fun () -> Phase3.Enode (Intern.get g.nodes nid)) in
            Array.unsafe_set a nid v;
            v
          end);
      s_ent_region =
        (fun rid ->
          let a = slot region_eids rid in
          let v = Array.unsafe_get a rid in
          if v >= 0 then v
          else begin
            let v =
              ent (pack_key 4 rid 0 0) (fun () -> Phase3.Eregion (Intern.get g.strs rid))
            in
            Array.unsafe_set a rid v;
            v
          end);
      s_edge = (fun src dst mode why -> add_edge g src dst mode why);
      s_seed = (fun dst parent why -> set_data g dst ~parent ~why);
      s_warn = (fun w -> record_warning g w);
      s_discover = (fun gfn gcid -> discover_pair g gfn gcid);
      s_callee_cid =
        (fun _ctx self_cid gfn ->
          let ocid =
            match Hashtbl.find_opt own_cids gfn.Ssair.Ir.fname with
            | Some c -> c
            | None ->
              let c = Intern.Ctx.intern g.ctxs (own_list g gfn) in
              Hashtbl.replace own_cids gfn.Ssair.Ir.fname c;
              c
          in
          if g.st.Phase3.config.Config.context_sensitive then
            Intern.Ctx.union g.ctxs self_cid ocid
          else ocid);
      s_cmemo =
        (fun ctx self_cid callee ->
          let fid = Intern.intern g.strs callee in
          let key = (fid lsl 20) lor self_cid in
          match Hashtbl.find_opt cmemo_tbl key with
          | Some cm -> cm
          | None ->
            let cm = compute_cmemo g sk ctx self_cid callee in
            Hashtbl.add cmemo_tbl key cm;
            cm);
      s_call_whys =
        (fun fid callee nargs ->
          match Hashtbl.find_opt call_whys fid with
          | Some w -> w
          | None ->
            let w =
              ( Array.init nargs (fun k ->
                    sk.s_wid ("argument " ^ string_of_int k ^ " of call to " ^ callee)),
                sk.s_wid ("return value of " ^ callee) )
            in
            Hashtbl.add call_whys fid w;
            w);
      s_why_ext =
        (fun callee ->
          let fid = Intern.intern g.strs callee in
          match Hashtbl.find_opt ext_whys fid with
          | Some w -> w
          | None ->
            let w = sk.s_wid ("through external call " ^ callee) in
            Hashtbl.add ext_whys fid w;
            w);
    }
  in
  sk

(* Translate the block's local value tables to global intern ids once,
   then rewrite each packed local descriptor into a packed global key —
   no structural hashing per entity, and a fresh key constructs its
   [Phase3.entity] (for the pour-back) from the already-canonical global
   values. *)
let replay g (blk : block) =
  let gstrs = Array.map (Intern.intern g.strs) blk.b_strs in
  let gctxs = Array.map (Intern.Ctx.intern g.ctxs) blk.b_ctxs in
  let gnodes = Array.map (Intern.intern g.nodes) blk.b_nodes in
  let gwhys = Array.map (Intern.intern g.whys) blk.b_whys in
  let gw w =
    if w < n_static_whys then Array.unsafe_get g.static_wids w
    else Array.unsafe_get gwhys (w - n_static_whys)
  in
  let nents = Array.length blk.b_ents in
  let ids = Array.make (max nents 1) 0 in
  for i = 0 to nents - 1 do
    let k = Array.unsafe_get blk.b_ents i in
    let tag = key_tag k and a = key_a k and b = key_b k and c = key_c k in
    let gkey =
      match tag with
      | 0 -> pack_key 0 gstrs.(a) gctxs.(b) c
      | 1 -> pack_key 1 gstrs.(a) gctxs.(b) gstrs.(c)
      | 2 -> pack_key 2 gstrs.(a) gctxs.(b) 0
      | 3 -> pack_key 3 gnodes.(a) 0 0
      | _ -> pack_key 4 gstrs.(a) 0 0
    in
    let n = Intern.Packed.length g.keys in
    let id = Intern.Packed.intern g.keys gkey in
    if id = n then begin
      ensure_cap g (n + 1);
      g.rev.(id) <-
        (match tag with
        | 0 ->
          Phase3.Eval (Intern.get g.strs gstrs.(a), Intern.Ctx.get g.ctxs gctxs.(b), c)
        | 1 ->
          Phase3.Eparam
            (Intern.get g.strs gstrs.(a), Intern.Ctx.get g.ctxs gctxs.(b),
             Intern.get g.strs gstrs.(c))
        | 2 -> Phase3.Eret (Intern.get g.strs gstrs.(a), Intern.Ctx.get g.ctxs gctxs.(b))
        | 3 -> Phase3.Enode (Intern.get g.nodes gnodes.(a))
        | _ -> Phase3.Eregion (Intern.get g.strs gstrs.(a)))
    end;
    Array.unsafe_set ids i id
  done;
  let ops = blk.b_ops in
  for i = 0 to Array.length ops - 1 do
    let o = Array.unsafe_get ops i in
    let kind = op_kind o in
    if kind = 0 then
      add_edge g ids.(op_x o) ids.(op_y o) (op_mode o) (gw (op_why o))
    else if kind = 1 then set_data g ids.(op_x o) ~parent:ids.(op_y o) ~why:(gw (op_why o))
    else if kind = 2 then record_warning g blk.b_warns.(op_x o)
    else
      match Hashtbl.find_opt g.funcs_by_name blk.b_strs.(op_x o) with
      | Some gfn -> discover_pair g gfn gctxs.(op_y o)
      | None -> ()
  done

(* -- Content-addressed pair keys ----------------------------------------------- *)

(* Everything [build_pair_block] reads about a function, folded into one
   digest; combined with the context digest this keys the pair cache.
   Global inputs (region model, heap graph, type env, noncore sockets,
   semantic config) are digested once per run. *)
type keyctx = {
  kc_global : string;
  kc_p1_by : (string, string) Hashtbl.t;
  kc_pts_by : (string, string) Hashtbl.t;
  kc_funcs : (string, string) Hashtbl.t;  (** function digests *)
  kc_dep : (string, string) Hashtbl.t;  (** memoized per-function dependency digest *)
  kc_ctx : (int, string) Hashtbl.t;  (** memoized per-context digest, by ctx id *)
}

let make_keyctx g (digests : Digest_ir.t) ~sem_fp =
  let st = g.st in
  let p1_by = Digest_ir.phase1_by_func st.Phase3.p1 in
  let pts_by, heap_d = Digest_ir.pointsto_by_func st.Phase3.pts in
  let noncore_d =
    Digest_ir.of_value
      (List.sort compare
         (Hashtbl.fold (fun s () acc -> s :: acc) st.Phase3.noncore_sockets []))
  in
  {
    kc_global =
      Digest_ir.combine
        [ Digest_ir.shm st.Phase3.shm; heap_d; digests.Digest_ir.env; noncore_d; sem_fp ];
    kc_p1_by = p1_by;
    kc_pts_by = pts_by;
    kc_funcs = digests.Digest_ir.funcs;
    kc_dep = Hashtbl.create 64;
    kc_ctx = Hashtbl.create 64;
  }

(* Direct defined callees of [f] with the facts the builder reads about
   them: name, parameter names, own-assumption context. *)
let callee_sigs g (f : Ssair.Ir.func) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (i : Ssair.Ir.instr) ->
      match i.Ssair.Ir.idesc with
      | Ssair.Ir.Call { callee; _ } when not (Hashtbl.mem seen callee) -> (
        match Hashtbl.find_opt g.funcs_by_name callee with
        | Some gfn ->
          Hashtbl.replace seen callee
            (List.map fst gfn.Ssair.Ir.fparams, Hashtbl.find g.own_lists callee)
        | None -> ())
      | _ -> ())
    (Ssair.Ir.all_instrs f);
  List.sort compare (Hashtbl.fold (fun n sg acc -> (n, sg) :: acc) seen [])

let dep_digest g kc (f : Ssair.Ir.func) =
  let fname = f.Ssair.Ir.fname in
  match Hashtbl.find_opt kc.kc_dep fname with
  | Some d -> d
  | None ->
    (* the absint summary shapes the edge block (pruned control edges),
       and ranges are interprocedural, so it must key the cached block *)
    let absint_d =
      match g.st.Phase3.absint with
      | Some ai -> Absint.summary_digest ai fname
      | None -> "no-absint"
    in
    let d =
      Digest_ir.of_value
        ( Hashtbl.find kc.kc_funcs fname,
          Digest_ir.facts_digest kc.kc_p1_by fname,
          Digest_ir.facts_digest kc.kc_pts_by fname,
          kc.kc_global,
          absint_d,
          callee_sigs g f )
    in
    Hashtbl.replace kc.kc_dep fname d;
    d

let pair_key g kc (f : Ssair.Ir.func) cid =
  let ctx_d =
    match Hashtbl.find_opt kc.kc_ctx cid with
    | Some d -> d
    | None ->
      let d = Digest_ir.of_value (Intern.Ctx.get g.ctxs cid) in
      Hashtbl.replace kc.kc_ctx cid d;
      d
  in
  Digest_ir.combine [ dep_digest g kc f; ctx_d ]

(* -- Wave-parallel pair building ----------------------------------------------- *)

(* Populate the [finfos] (CDG closures) and [own_lists] entries a wave's
   builders will read; must run on the main domain before workers start.
   A function reappearing in a later wave (same function, new context)
   was fully prewarmed by its first wave, so it is skipped. *)
let prewarm_wave g (wave : (Ssair.Ir.func * int) array) =
  Array.iter
    (fun ((f : Ssair.Ir.func), _) ->
      if not (Hashtbl.mem g.prewarmed f.Ssair.Ir.fname) then begin
        Hashtbl.replace g.prewarmed f.Ssair.Ir.fname ();
        ignore (finfo g f);
        ignore (own_list g f);
        List.iter
          (fun (i : Ssair.Ir.instr) ->
            match i.Ssair.Ir.idesc with
            | Ssair.Ir.Call { callee; _ } -> (
              match Hashtbl.find_opt g.funcs_by_name callee with
              | Some gfn -> ignore (own_list g gfn)
              | None -> ())
            | _ -> ())
          (Ssair.Ir.all_instrs f)
      end)
    wave

(* Build the given pairs, on a bounded domain pool when configured.
   Workers only read [g] (see {!build_pair_block}); results come back in
   input order, so the subsequent sequential replay is deterministic. *)
let build_many g (todo : (Ssair.Ir.func * Phase3.Ctx.t) array) : block array =
  let n = Array.length todo in
  let domains =
    let d = g.st.Phase3.config.Config.pair_domains in
    if d = 0 then Domain.recommended_domain_count () else d
  in
  let build (f : Ssair.Ir.func) ctx =
    Telemetry.span "pair.build"
      ~args:[ ("function", f.Ssair.Ir.fname) ]
      (fun () -> Telemetry.time_hist h_pair_build (fun () -> build_pair_block g f ctx))
  in
  Telemetry.add c_pair_tasks n;
  if n <= 1 || domains <= 1 then Array.map (fun (f, ctx) -> build f ctx) todo
  else begin
    let out : (block, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let active = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Telemetry.record_max c_pair_peak (Atomic.fetch_and_add active 1 + 1);
          let f, ctx = todo.(i) in
          out.(i) <- Some (try Ok (build f ctx) with e -> Error e);
          Atomic.decr active;
          loop ()
        end
      in
      loop ()
    in
    let extra = min (domains - 1) (n - 1) in
    let spawned = List.init (max 0 extra) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map (function Some (Ok b) -> b | Some (Error e) -> raise e | None -> assert false) out
  end

(* -- Entry point --------------------------------------------------------------- *)

let run ?(config = Config.default) ?cache ?digests ?absint (prog : Ssair.Ir.program)
    (shm : Shm.t) (p1 : Phase1.t) (pts : Pointsto.t) : Phase3.result =
  let st = Phase3.make_state ~config ?absint prog shm p1 pts in
  let g = create st in
  let kc =
    match (cache, digests) with
    | Some _, Some d -> Some (make_keyctx g d ~sem_fp:(Digest_ir.semantic_config config))
    | _ -> None
  in
  List.iter
    (fun (f, ctx) -> discover_pair g f (Intern.Ctx.intern g.ctxs ctx))
    (Phase3.root_pairs st);
  (* pair discovery is taint-independent, so building all pairs before
     draining reaches the same closure as interleaving would.  The
     pending queue is drained in waves: each wave is prewarmed and built
     (cache hits skipping the build; misses optionally in parallel),
     then replayed sequentially in discovery order — the same total
     order a sequential FIFO drain would produce, which keeps reports
     bit-identical across {cold, warm, parallel}. *)
  (* sequential cache-less runs take the direct path: each pending pair
     is walked straight into the graph in FIFO order — the same total op
     order the wave machinery produces, without block/replay overhead *)
  let domains =
    let d = config.Config.pair_domains in
    if d = 0 then Domain.recommended_domain_count () else d
  in
  let direct () =
    let sk = direct_sink g in
    let n = ref 0 in
    while not (Queue.is_empty g.pending) do
      let f, cid = Queue.pop g.pending in
      incr n;
      if Telemetry.enabled () then
        Telemetry.span "pair.build"
          ~args:[ ("function", f.Ssair.Ir.fname) ]
          (fun () ->
            Telemetry.time_hist h_pair_build (fun () ->
                walk_pair g sk f (Intern.Ctx.get g.ctxs cid) ~self_cid:cid))
      else walk_pair g sk f (Intern.Ctx.get g.ctxs cid) ~self_cid:cid
    done;
    Telemetry.add c_pair_built !n
  in
  let rec waves () =
    if not (Queue.is_empty g.pending) then begin
      let wave = Array.of_seq (Queue.to_seq g.pending) in
      Queue.clear g.pending;
      Telemetry.span "phase3.prewarm" (fun () -> prewarm_wave g wave);
      let keys =
        match (cache, kc) with
        | Some _, Some kc -> Array.map (fun (f, cid) -> Some (pair_key g kc f cid)) wave
        | _ -> Array.map (fun _ -> None) wave
      in
      let blocks : block option array =
        Array.map2
          (fun (_, _) key ->
            match (cache, key) with
            | Some c, Some k -> (Cache.find c ~ns:"pair" ~key:k : block option)
            | _ -> None)
          wave keys
      in
      let miss_idx =
        Array.to_list (Array.mapi (fun i b -> (i, b)) blocks)
        |> List.filter_map (fun (i, b) -> if b = None then Some i else None)
        |> Array.of_list
      in
      Telemetry.add c_pair_built (Array.length miss_idx);
      Telemetry.add c_pair_replayed (Array.length wave - Array.length miss_idx);
      let built =
        Telemetry.span "phase3.buildmany" (fun () ->
            build_many g
              (Array.map
                 (fun i ->
                   let f, cid = wave.(i) in
                   (f, Intern.Ctx.get g.ctxs cid))
                 miss_idx))
      in
      Array.iteri
        (fun j i ->
          blocks.(i) <- Some built.(j);
          match (cache, keys.(i)) with
          | Some c, Some k -> Cache.store c ~ns:"pair" ~key:k built.(j)
          | _ -> ())
        miss_idx;
      Telemetry.span "phase3.replay" (fun () ->
          Array.iter (function Some b -> replay g b | None -> assert false) blocks);
      waves ()
    end
  in
  Telemetry.span "phase3.waves" (if kc = None && domains <= 1 then direct else waves);
  Telemetry.span "phase3.csr_build" (fun () -> finalize_csr g);
  Telemetry.span "phase3.drain" (fun () -> drain g);
  Telemetry.add c_wl_pushes g.n_pushes;
  Telemetry.add c_wl_pops g.n_pops;
  Telemetry.add c_edges g.n_edges;
  Telemetry.add c_entities (Intern.Packed.length g.keys);
  Telemetry.add c_contexts (Intern.Ctx.length g.ctxs);
  Telemetry.add c_bitset_words (Bitset.words g.data + Bitset.words g.ctrl);
  (* pour the interned taints back into the shared state shape; the
     tables are sized up front from the bitset population counts so
     insertion never rehashes *)
  let entity_origin parents whys i =
    let p = parents.(i) in
    {
      Phase3.parent = (if p < 0 then None else Some g.rev.(p));
      why = Intern.get g.whys whys.(i);
    }
  in
  Telemetry.span "phase3.pour" (fun () ->
      let nents = Intern.Packed.length g.keys in
      let data_tbl = Hashtbl.create (2 * Bitset.count g.data) in
      let ctrl_tbl = Hashtbl.create (2 * Bitset.count g.ctrl) in
      for i = 0 to nents - 1 do
        if Bitset.get g.data i then
          Hashtbl.replace data_tbl g.rev.(i) (entity_origin g.d_parent g.d_why i);
        if Bitset.get g.ctrl i then
          Hashtbl.replace ctrl_tbl g.rev.(i) (entity_origin g.c_parent g.c_why i)
      done;
      st.Phase3.data <- data_tbl;
      st.Phase3.ctrl <- ctrl_tbl);
  st.Phase3.passes <- 1;
  st.Phase3.changed <- false;
  let dependencies = Telemetry.span "phase3.collect" (fun () -> Phase3.collect_dependencies st) in
  {
    Phase3.warnings =
      Hashtbl.fold (fun _ w acc -> w :: acc) st.Phase3.warnings []
      |> List.stable_sort Report.compare_warning;
    dependencies;
    passes = 1;
    pair_count = Hashtbl.length st.Phase3.pairs;
    engine_stats =
      [ ("vf_entities", Intern.Packed.length g.keys);
        ("vf_contexts", Intern.Ctx.length g.ctxs);
        ("vf_edges", g.n_edges);
        ("vf_pops", g.n_pops);
        ("vf_pushes", g.n_pushes) ];
    taint_state = st;
  }
