(** Sparse worklist phase-3 engine (see the interface for the contract).

    Structure: entities are interned to dense ids; per-entity taint bits,
    origins and successor-edge lists live in parallel growable arrays.
    Each newly discovered (function, context) pair is translated once
    into a symbolic {e edge block} by {!build_pair_block} — a
    transcription of {!Phase3.analyze_pair} where every dynamic taint
    test becomes a static edge — then {!replay} applies the block's
    operations in recorded order and {!drain} runs the worklist to
    closure.  The final interned taint state is poured back into a
    {!Phase3.state} so that {!Phase3.collect_dependencies} (and the DOT
    export) are shared with the legacy engine verbatim.

    Why symbolic blocks instead of building edges directly (as PR 1
    did): a block is pure data keyed only by what the builder reads, so
    it can be (a) cached content-addressed across runs and (b) built on
    another domain.  Cold, warm and parallel runs all replay the same
    operation sequence in the same order, which is what makes their
    reports bit-identical. *)

open Minic
module Offset = Pointsto.Offset

(* Edge modes: how taint crosses the edge and which origin is recorded.
   [Mdata]/[Mctrl] mirror the legacy data→data / ctrl→ctrl flows with the
   source as trace parent; [Mboth] fuses an [Mdata] and an [Mctrl] edge
   sharing destination and reason (the overwhelmingly common pairing);
   [Many_ctrl] mirrors the control-dependence rules, which fire on either
   taint kind and record no parent. *)
type mode = Mdata | Mctrl | Mboth | Many_ctrl

type edge = { e_dst : int; e_mode : mode; e_why : string }

(* Symbolic pair-build operations.  Entity operands are indices into the
   block's [b_ents] array; {!replay} interns them into the live graph.
   The op sequence mirrors the legacy engine's visit order exactly, so
   first-win taint origins (and hence traces) are reproduced. *)
type op =
  | Oedge of int * int * mode * string  (** src, dst, mode, why *)
  | Oseed of int * int * string  (** static source: dst, trace parent, why *)
  | Owarn of Report.warning  (** unmonitored non-core read *)
  | Odiscover of string * Phase3.Ctx.t  (** callee pair to discover *)

type block = { b_ents : Phase3.entity array; b_ops : op array }

(* Entity keys: (tag, a, b, c) over interned small ids — see {!ent_key}.
   Hashing this flat int tuple is what replaces structural hashing of
   [(string * assumption list * vid)] in the legacy taint tables. *)
type key = int * int * int * int

(* Per-function facts that do not depend on the monitoring context. *)
type finfo = {
  fi_func : Ssair.Ir.func;
  fi_blocks : (Ssair.Ir.bid, Ssair.Ir.block) Hashtbl.t;
  fi_branches : (Ssair.Ir.bid * Ssair.Ir.vid) list;
      (** blocks ending in [Cbr]/[Switch] on a register, with the cond *)
  fi_closure : (Ssair.Ir.bid, Ssair.Ir.bid list) Hashtbl.t;
      (** branch block B ↦ blocks transitively control-dependent on B *)
}

type t = {
  st : Phase3.state;  (** receptacle for pairs/warnings/taints *)
  ctxs : Intern.Ctx.store;
  strs : string Intern.t;
  nodes : Pointsto.Node.t Intern.t;
  keys : key Intern.t;
  finfos : (string, finfo) Hashtbl.t;
  pairs_seen : (int * int, unit) Hashtbl.t;  (** (fname id, ctx id) *)
  pending : (Ssair.Ir.func * int) Queue.t;   (** discovered, to build *)
  funcs_by_name : (string, Ssair.Ir.func) Hashtbl.t;
      (** [Ssair.Ir.find_func] is a linear scan; call sites resolve
          callees once per visit, so index the program up front *)
  own_lists : (string, Phase3.Ctx.t) Hashtbl.t;
      (** canonical own-assumption context per function — needed at every
          call site; prewarmed on the main domain before parallel builds *)
  wl : int Queue.t;  (** worklist codes: entity id * 2 + (ctrl ? 1 : 0) *)
  (* parallel per-entity arrays, grown together by {!ensure_cap} *)
  mutable rev : Phase3.entity array;
  mutable edges : edge list array;
  mutable data : Bytes.t;
  mutable ctrl : Bytes.t;
  mutable d_parent : int array;  (** -1 = no parent *)
  mutable c_parent : int array;
  mutable d_why : string array;
  mutable c_why : string array;
  mutable n_edges : int;
  mutable n_pops : int;
  mutable n_pushes : int;
}

(* Counter inventory (registered at module init so the names exist in
   every stats snapshot, even as zeros under the legacy engine). *)
let c_wl_pushes = Telemetry.counter "vf.worklist_pushes"
let c_wl_pops = Telemetry.counter "vf.worklist_pops"
let c_edges = Telemetry.counter "vf.edges_built"
let c_entities = Telemetry.counter "vf.entities"
let c_contexts = Telemetry.counter "vf.contexts"
let c_pair_replayed = Telemetry.counter "vf.pair_blocks_replayed"
let c_pair_built = Telemetry.counter "vf.pair_blocks_built"
let c_pair_tasks = Telemetry.counter "pool.pair_tasks"
let c_pair_peak = Telemetry.counter "pool.pair_peak"

let create st =
  let funcs_by_name = Hashtbl.create 64 in
  List.iter
    (fun (f : Ssair.Ir.func) -> Hashtbl.replace funcs_by_name f.Ssair.Ir.fname f)
    st.Phase3.prog.Ssair.Ir.funcs;
  {
    st;
    funcs_by_name;
    own_lists = Hashtbl.create 64;
    ctxs = Intern.Ctx.create ();
    strs = Intern.create 64;
    nodes = Intern.create 64;
    keys = Intern.create 1024;
    finfos = Hashtbl.create 16;
    pairs_seen = Hashtbl.create 64;
    pending = Queue.create ();
    wl = Queue.create ();
    rev = [||];
    edges = [||];
    data = Bytes.empty;
    ctrl = Bytes.empty;
    d_parent = [||];
    c_parent = [||];
    d_why = [||];
    c_why = [||];
    n_edges = 0;
    n_pops = 0;
    n_pushes = 0;
  }

let ensure_cap g n =
  let cap = Array.length g.edges in
  if n > cap then begin
    let cap' = max 256 (max n (2 * cap)) in
    let grow_arr dummy a =
      let a' = Array.make cap' dummy in
      Array.blit a 0 a' 0 cap;
      a'
    in
    g.rev <- grow_arr (Phase3.Eregion "") g.rev;
    g.edges <- grow_arr [] g.edges;
    g.d_parent <- grow_arr (-1) g.d_parent;
    g.c_parent <- grow_arr (-1) g.c_parent;
    g.d_why <- grow_arr "" g.d_why;
    g.c_why <- grow_arr "" g.c_why;
    let grow_bytes b =
      let b' = Bytes.make cap' '\000' in
      Bytes.blit b 0 b' 0 cap;
      b'
    in
    g.data <- grow_bytes g.data;
    g.ctrl <- grow_bytes g.ctrl
  end

(* -- Entity interning --------------------------------------------------------- *)

let ent g key entity =
  let n = Intern.length g.keys in
  let id = Intern.intern g.keys key in
  if id = n then begin
    ensure_cap g (n + 1);
    g.rev.(id) <- entity
  end;
  id

let intern_entity g (e : Phase3.entity) : int =
  match e with
  | Phase3.Eval (fname, ctx, vid) ->
    ent g (0, Intern.intern g.strs fname, Intern.Ctx.intern g.ctxs ctx, vid) e
  | Phase3.Eparam (fname, ctx, pname) ->
    ent g
      (1, Intern.intern g.strs fname, Intern.Ctx.intern g.ctxs ctx, Intern.intern g.strs pname)
      e
  | Phase3.Eret (fname, ctx) ->
    ent g (2, Intern.intern g.strs fname, Intern.Ctx.intern g.ctxs ctx, 0) e
  | Phase3.Enode node -> ent g (3, Intern.intern g.nodes node, 0, 0) e
  | Phase3.Eregion r -> ent g (4, Intern.intern g.strs r, 0, 0) e

(* -- Taint setting and propagation -------------------------------------------- *)

let data_tainted g eid = Bytes.get g.data eid = '\001'
let ctrl_tainted g eid = Bytes.get g.ctrl eid = '\001'

let set_data g eid ~parent ~why =
  if not (data_tainted g eid) then begin
    Bytes.set g.data eid '\001';
    g.d_parent.(eid) <- parent;
    g.d_why.(eid) <- why;
    g.n_pushes <- g.n_pushes + 1;
    Queue.push (eid * 2) g.wl
  end

let set_ctrl g eid ~parent ~why =
  if not (ctrl_tainted g eid) then begin
    Bytes.set g.ctrl eid '\001';
    g.c_parent.(eid) <- parent;
    g.c_why.(eid) <- why;
    g.n_pushes <- g.n_pushes + 1;
    Queue.push ((eid * 2) + 1) g.wl
  end

(** Add an edge and replay the source's current taint across it, so
    edges built after their source was tainted still fire. *)
let add_edge g src e =
  g.edges.(src) <- e :: g.edges.(src);
  g.n_edges <- g.n_edges + 1;
  match e.e_mode with
  | Mdata -> if data_tainted g src then set_data g e.e_dst ~parent:src ~why:e.e_why
  | Mctrl -> if ctrl_tainted g src then set_ctrl g e.e_dst ~parent:src ~why:e.e_why
  | Mboth ->
    if data_tainted g src then set_data g e.e_dst ~parent:src ~why:e.e_why;
    if ctrl_tainted g src then set_ctrl g e.e_dst ~parent:src ~why:e.e_why
  | Many_ctrl ->
    if data_tainted g src || ctrl_tainted g src then
      set_ctrl g e.e_dst ~parent:(-1) ~why:e.e_why

let drain g =
  let rec go () =
    match Queue.take_opt g.wl with
    | None -> ()
    | Some code ->
      g.n_pops <- g.n_pops + 1;
      let eid = code lsr 1 in
      let is_ctrl = code land 1 = 1 in
      List.iter
        (fun e ->
          match (is_ctrl, e.e_mode) with
          | false, (Mdata | Mboth) -> set_data g e.e_dst ~parent:eid ~why:e.e_why
          | true, (Mctrl | Mboth) -> set_ctrl g e.e_dst ~parent:eid ~why:e.e_why
          | (false | true), Many_ctrl -> set_ctrl g e.e_dst ~parent:(-1) ~why:e.e_why
          | false, Mctrl | true, Mdata -> ())
        g.edges.(eid);
      go ()
  in
  go ()

(* -- Static per-function facts ------------------------------------------------- *)

(* [own_list]/[finfo] memoize into [g] and must only run on the main
   domain; {!prewarm_wave} populates both tables for a wave before any
   worker touches them read-only. *)

let own_list g (f : Ssair.Ir.func) : Phase3.Ctx.t =
  match Hashtbl.find_opt g.own_lists f.Ssair.Ir.fname with
  | Some l -> l
  | None ->
    let l = Phase3.Ctx.make (Phase3.own_assumptions g.st f) in
    Hashtbl.replace g.own_lists f.Ssair.Ir.fname l;
    l

let finfo g (f : Ssair.Ir.func) : finfo =
  match Hashtbl.find_opt g.finfos f.Ssair.Ir.fname with
  | Some fi -> fi
  | None ->
    let cdg = Phase3.cdg_of g.st f in
    let fi_branches =
      List.filter_map
        (fun (b : Ssair.Ir.block) ->
          (* decided branches exert no control dependence — mirror
             Phase3.block_control_taint's pruning *)
          if Phase3.branch_decided g.st f b then None
          else
            match b.Ssair.Ir.termin with
            | Ssair.Ir.Cbr (Ssair.Ir.Vreg id, _, _)
            | Ssair.Ir.Switch (Ssair.Ir.Vreg id, _, _) ->
              Some (b.Ssair.Ir.bbid, id)
            | _ -> None)
        f.Ssair.Ir.blocks
    in
    let fi_closure = Hashtbl.create 8 in
    List.iter
      (fun (bB, _) ->
        if not (Hashtbl.mem fi_closure bB) then begin
          (* transitive closure of the CDG "controls" relation from bB,
             excluding bB itself — mirrors Phase3.block_control_taint *)
          let seen = Hashtbl.create 8 in
          let rec go bid =
            List.iter
              (fun d ->
                if not (Hashtbl.mem seen d) then begin
                  Hashtbl.replace seen d ();
                  go d
                end)
              (Option.value ~default:[] (Hashtbl.find_opt cdg.Ssair.Cdg.controls bid))
          in
          go bB;
          Hashtbl.replace fi_closure bB (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
        end)
      fi_branches;
    let fi_blocks = Hashtbl.create 16 in
    List.iter (fun (b : Ssair.Ir.block) -> Hashtbl.replace fi_blocks b.Ssair.Ir.bbid b)
      f.Ssair.Ir.blocks;
    let fi = { fi_func = f; fi_blocks; fi_branches; fi_closure } in
    Hashtbl.replace g.finfos f.Ssair.Ir.fname fi;
    fi

(* -- Pair discovery ------------------------------------------------------------ *)

let discover_pair g (f : Ssair.Ir.func) cid =
  let fid = Intern.intern g.strs f.Ssair.Ir.fname in
  if not (Hashtbl.mem g.pairs_seen (fid, cid)) then begin
    Hashtbl.replace g.pairs_seen (fid, cid) ();
    Hashtbl.replace g.st.Phase3.pairs (f.Ssair.Ir.fname, Intern.Ctx.get g.ctxs cid) ();
    if not (Phase1.is_exempt g.st.Phase3.p1 f.Ssair.Ir.fname) then
      Queue.push (f, cid) g.pending
  end

(* -- Building one (function, context) pair ------------------------------------- *)

(** Transcribe [f] under context [ctx] into a symbolic edge block; the
    static taint sources of the pair (unmonitored non-core reads,
    non-core recv buffers) become {!Oseed} ops.  Edge-for-rule
    correspondence with {!Phase3.analyze_pair} is documented inline.

    Pure with respect to [g]: reads only [st] (immutable analysis
    inputs), [funcs_by_name], and the prewarmed [finfos]/[own_lists]
    tables — safe to run on a worker domain. *)
let build_pair_block g (f : Ssair.Ir.func) (ctx : Phase3.Ctx.t) : block =
  let st = g.st in
  let config = st.Phase3.config in
  let env = st.Phase3.prog.Ssair.Ir.env in
  let fname = f.Ssair.Ir.fname in
  let fi = Hashtbl.find g.finfos fname in
  (* block-local entity table: entity ↦ dense index in [b_ents] *)
  let ent_idx : (Phase3.entity, int) Hashtbl.t = Hashtbl.create 64 in
  let ents_rev = ref [] in
  let n_ents = ref 0 in
  let ent e =
    match Hashtbl.find_opt ent_idx e with
    | Some i -> i
    | None ->
      let i = !n_ents in
      incr n_ents;
      Hashtbl.replace ent_idx e i;
      ents_rev := e :: !ents_rev;
      i
  in
  let ops = ref [] in
  let op o = ops := o :: !ops in
  let edge src dst mode why = op (Oedge (src, dst, mode, why)) in
  (* defs are only consulted to resolve recv sockets, so built on demand *)
  let defs = lazy (Ssair.Ir.def_table f) in
  (* formatted "why" strings per (callee, arg index): edge building runs
     per pair, formatting on every visit would dominate.  [k >= 0] =
     argument position, [-1] = return value, [-2] = extern passthrough. *)
  let why_memo : (string * int, string) Hashtbl.t = Hashtbl.create 16 in
  let why_of callee k =
    match Hashtbl.find_opt why_memo (callee, k) with
    | Some s -> s
    | None ->
      let s =
        if k >= 0 then Printf.sprintf "argument %d of call to %s" k callee
        else if k = -1 then Printf.sprintf "return value of %s" callee
        else Printf.sprintf "through external call %s" callee
      in
      Hashtbl.replace why_memo (callee, k) s;
      s
  in
  let eval vid = ent (Phase3.Eval (fname, ctx, vid)) in
  let value_ent (v : Ssair.Ir.value) =
    match v with
    | Ssair.Ir.Vreg id -> Some (eval id)
    | Ssair.Ir.Vparam p -> Some (ent (Phase3.Eparam (fname, ctx, p)))
    | _ -> None
  in
  (* control-dependence targets per block: entity that gains ctrl-taint
     (with the given reason) when the block executes under a tainted
     branch; wired to branch conditions after the walk *)
  let ctrl_targets : (Ssair.Ir.bid, (int * string) list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_ct bid eid why =
    match Hashtbl.find_opt ctrl_targets bid with
    | Some l -> l := (eid, why) :: !l
    | None -> Hashtbl.replace ctrl_targets bid (ref [ (eid, why) ])
  in
  let flow_operands self vs why =
    List.iter
      (fun v -> match value_ent v with Some ve -> edge ve self Mboth why | None -> ())
      vs
  in
  List.iter
    (fun (b : Ssair.Ir.block) ->
      let bid = b.Ssair.Ir.bbid in
      (* phis: data/ctrl from incomings; implicit flow from the branches
         controlling the merge *)
      List.iter
        (fun (p : Ssair.Ir.phi) ->
          let self = eval p.Ssair.Ir.pid in
          List.iter
            (fun (_, v) ->
              match value_ent v with
              | Some ve -> edge ve self Mboth "phi merge"
              | None -> ())
            p.Ssair.Ir.incoming;
          if config.Config.control_deps then begin
            let why = "phi merges paths controlled by an unsafe condition" in
            add_ct bid self why;
            List.iter
              (fun (pred, _) ->
                add_ct pred self why;
                match Hashtbl.find_opt fi.fi_blocks pred with
                | Some pblk -> (
                  match pblk.Ssair.Ir.termin with
                  | Ssair.Ir.Cbr (Ssair.Ir.Vreg cvid, _, _)
                  | Ssair.Ir.Switch (Ssair.Ir.Vreg cvid, _, _) ->
                    if not (Phase3.branch_decided st f pblk) then
                      edge (eval cvid) self Many_ctrl why
                  | _ -> ())
                | None -> ())
              p.Ssair.Ir.incoming
          end)
        b.Ssair.Ir.phis;
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          let self = eval i.Ssair.Ir.iid in
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Alloca _ | Ssair.Ir.Annotation _ -> ()
          | Ssair.Ir.Load { ptr; lty } ->
            (* 1. shared-memory reads: static source (warning) when the
               context leaves a non-core target uncovered; edge from the
               region node for covered core regions *)
            let shm_targets = Phase1.shm_targets st.Phase3.p1 f ptr in
            Phase1.Rset.iter
              (fun tgt ->
                let rname = tgt.Phase1.Rtgt.region in
                match Shm.region st.Phase3.shm rname with
                | None -> ()
                | Some r ->
                  if r.Shm.r_noncore then begin
                    let covered =
                      match tgt.Phase1.Rtgt.off with
                      | Offset.Byte byte ->
                        Phase3.Ctx.covers_region ctx rname ~lo:byte
                          ~hi:(byte + Ty.sizeof env lty)
                      | Offset.Top -> Phase3.Ctx.covers_region ctx rname ~lo:0 ~hi:r.Shm.r_size
                    in
                    if not covered then begin
                      op
                        (Owarn
                           {
                             Report.w_func = fname;
                             w_region = rname;
                             w_loc = i.Ssair.Ir.iloc;
                             w_context = Phase3.Ctx.names ctx;
                           });
                      op
                        (Oseed
                           ( self,
                             ent (Phase3.Eregion rname),
                             Fmt.str "unmonitored read of non-core region %s at %a" rname
                               Loc.pp i.Ssair.Ir.iloc ))
                    end
                  end
                  else begin
                    let node = Pointsto.Node.Nshm rname in
                    if not (Phase3.Ctx.covers_node ctx node) then
                      edge (ent (Phase3.Enode node)) self Mdata
                        "read of core region holding an unsafe value"
                  end)
              shm_targets;
            (* 2. ordinary memory (cf. the shm/ordinary split in the
               legacy engine) *)
            if Phase1.Rset.is_empty shm_targets then
              Pointsto.Tset.iter
                (fun tgt ->
                  let node = tgt.Pointsto.Target.node in
                  if not (Phase3.Ctx.covers_node ctx node) then begin
                    let ne = ent (Phase3.Enode node) in
                    edge ne self Mdata "load from unsafe memory object";
                    edge ne self Mctrl "load from control-unsafe memory object"
                  end)
                (Pointsto.points_to st.Phase3.pts f ptr);
            (* 3. tainted address *)
            flow_operands self [ ptr ] "load through unsafe pointer"
          | Ssair.Ir.Store { ptr; sval; _ } ->
            let target_nodes =
              let shm = Phase1.shm_targets st.Phase3.p1 f ptr in
              if Phase1.Rset.is_empty shm then
                Pointsto.Tset.fold
                  (fun tgt acc -> ent (Phase3.Enode tgt.Pointsto.Target.node) :: acc)
                  (Pointsto.points_to st.Phase3.pts f ptr)
                  []
              else
                Phase1.Rset.fold
                  (fun tgt acc ->
                    ent (Phase3.Enode (Pointsto.Node.Nshm tgt.Phase1.Rtgt.region)) :: acc)
                  shm []
            in
            (match value_ent sval with
            | Some ve ->
              List.iter
                (fun ne ->
                  edge ve ne Mdata "unsafe value stored";
                  edge ve ne Mctrl "control-unsafe value stored")
                target_nodes
            | None -> ());
            if config.Config.control_deps then
              List.iter
                (fun ne -> add_ct bid ne "store controlled by an unsafe condition")
                target_nodes
          | Ssair.Ir.Binop { lhs; rhs; _ } -> flow_operands self [ lhs; rhs ] "arithmetic"
          | Ssair.Ir.Unop { operand; _ } -> flow_operands self [ operand ] "arithmetic"
          | Ssair.Ir.Cast { cval; _ } -> flow_operands self [ cval ] "cast"
          | Ssair.Ir.Gep { base; idx; _ } ->
            flow_operands self [ base; idx ] "address arithmetic"
          | Ssair.Ir.Call { callee; args; _ } -> (
            match Hashtbl.find_opt g.funcs_by_name callee with
            | Some gfn ->
              let gctx =
                let own = Hashtbl.find g.own_lists gfn.Ssair.Ir.fname in
                if config.Config.context_sensitive then Phase3.Ctx.union ctx own else own
              in
              op (Odiscover (gfn.Ssair.Ir.fname, gctx));
              List.iteri
                (fun k arg ->
                  match List.nth_opt gfn.Ssair.Ir.fparams k with
                  | Some (pname, _) ->
                    let pe = ent (Phase3.Eparam (gfn.Ssair.Ir.fname, gctx, pname)) in
                    (match value_ent arg with
                    | Some ve -> edge ve pe Mboth (why_of callee k)
                    | None -> ());
                    if config.Config.control_deps then
                      add_ct bid pe "call controlled by an unsafe condition"
                  | None -> ())
                args;
              let re = ent (Phase3.Eret (gfn.Ssair.Ir.fname, gctx)) in
              edge re self Mboth (why_of callee (-1))
            | None ->
              (* extern; message-passing: recv through a non-core socket
                 is a static taint source for the buffer *)
              if List.mem callee config.Config.recv_functions then begin
                let socket_is_noncore =
                  match args with
                  | sock :: _ -> (
                    match sock with
                    | Ssair.Ir.Vparam p -> Hashtbl.mem st.Phase3.noncore_sockets p
                    | Ssair.Ir.Vreg id -> (
                      match Hashtbl.find_opt (Lazy.force defs) id with
                      | Some
                          (Ssair.Ir.Def_instr
                             ( { idesc = Ssair.Ir.Load { ptr = Ssair.Ir.Vglobal gl; _ }; _ },
                               _ )) ->
                        Hashtbl.mem st.Phase3.noncore_sockets gl
                      | _ -> false)
                    | _ -> false)
                  | [] -> false
                in
                if socket_is_noncore then
                  match args with
                  | _ :: buf :: _ ->
                    Pointsto.Tset.iter
                      (fun tgt ->
                        op
                          (Oseed
                             ( ent (Phase3.Enode tgt.Pointsto.Target.node),
                               ent (Phase3.Eregion (Fmt.str "socket via %s" callee)),
                               "data received from a non-core component" )))
                      (Pointsto.points_to st.Phase3.pts f buf)
                  | _ -> ()
              end;
              flow_operands self args (why_of callee (-2))))
        b.Ssair.Ir.instrs;
      match b.Ssair.Ir.termin with
      | Ssair.Ir.Ret (Some v) ->
        let re = ent (Phase3.Eret (fname, ctx)) in
        (match value_ent v with
        | Some ve -> edge ve re Mboth "returned"
        | None -> ());
        if config.Config.control_deps then
          add_ct bid re "returned value selected by an unsafe condition"
      | _ -> ())
    f.Ssair.Ir.blocks;
  (* wire branch conditions to the control-dependence targets of every
     block in their controls-closure (Phase3.block_control_taint made
     sparse: the closure is static, only the cond's taint is dynamic) *)
  List.iter
    (fun (bB, cvid) ->
      let c = eval cvid in
      List.iter
        (fun d ->
          match Hashtbl.find_opt ctrl_targets d with
          | Some l -> List.iter (fun (teid, why) -> edge c teid Many_ctrl why) !l
          | None -> ())
        (Hashtbl.find fi.fi_closure bB))
    fi.fi_branches;
  {
    b_ents = Array.of_list (List.rev !ents_rev);
    b_ops = Array.of_list (List.rev !ops);
  }

(* -- Replaying a block into the live graph ------------------------------------- *)

(* Warning dedup by (loc, region) — mirrors Phase3.warn, but the record
   was already formatted at build time. *)
let record_warning g (w : Report.warning) =
  let key = (w.Report.w_loc, w.Report.w_region) in
  if not (Hashtbl.mem g.st.Phase3.warnings key) then
    Hashtbl.replace g.st.Phase3.warnings key w

let replay g (blk : block) =
  let ids = Array.map (intern_entity g) blk.b_ents in
  Array.iter
    (function
      | Oedge (src, dst, mode, why) ->
        add_edge g ids.(src) { e_dst = ids.(dst); e_mode = mode; e_why = why }
      | Oseed (dst, parent, why) -> set_data g ids.(dst) ~parent:ids.(parent) ~why
      | Owarn w -> record_warning g w
      | Odiscover (callee, gctx) -> (
        match Hashtbl.find_opt g.funcs_by_name callee with
        | Some gfn -> discover_pair g gfn (Intern.Ctx.intern g.ctxs gctx)
        | None -> ()))
    blk.b_ops

(* -- Content-addressed pair keys ----------------------------------------------- *)

(* Everything [build_pair_block] reads about a function, folded into one
   digest; combined with the context digest this keys the pair cache.
   Global inputs (region model, heap graph, type env, noncore sockets,
   semantic config) are digested once per run. *)
type keyctx = {
  kc_global : string;
  kc_p1_by : (string, string) Hashtbl.t;
  kc_pts_by : (string, string) Hashtbl.t;
  kc_funcs : (string, string) Hashtbl.t;  (** function digests *)
  kc_dep : (string, string) Hashtbl.t;  (** memoized per-function dependency digest *)
  kc_ctx : (int, string) Hashtbl.t;  (** memoized per-context digest, by ctx id *)
}

let make_keyctx g (digests : Digest_ir.t) ~sem_fp =
  let st = g.st in
  let p1_by = Digest_ir.phase1_by_func st.Phase3.p1 in
  let pts_by, heap_d = Digest_ir.pointsto_by_func st.Phase3.pts in
  let noncore_d =
    Digest_ir.of_value
      (List.sort compare
         (Hashtbl.fold (fun s () acc -> s :: acc) st.Phase3.noncore_sockets []))
  in
  {
    kc_global =
      Digest_ir.combine
        [ Digest_ir.shm st.Phase3.shm; heap_d; digests.Digest_ir.env; noncore_d; sem_fp ];
    kc_p1_by = p1_by;
    kc_pts_by = pts_by;
    kc_funcs = digests.Digest_ir.funcs;
    kc_dep = Hashtbl.create 64;
    kc_ctx = Hashtbl.create 64;
  }

(* Direct defined callees of [f] with the facts the builder reads about
   them: name, parameter names, own-assumption context. *)
let callee_sigs g (f : Ssair.Ir.func) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (i : Ssair.Ir.instr) ->
      match i.Ssair.Ir.idesc with
      | Ssair.Ir.Call { callee; _ } when not (Hashtbl.mem seen callee) -> (
        match Hashtbl.find_opt g.funcs_by_name callee with
        | Some gfn ->
          Hashtbl.replace seen callee
            (List.map fst gfn.Ssair.Ir.fparams, Hashtbl.find g.own_lists callee)
        | None -> ())
      | _ -> ())
    (Ssair.Ir.all_instrs f);
  List.sort compare (Hashtbl.fold (fun n sg acc -> (n, sg) :: acc) seen [])

let dep_digest g kc (f : Ssair.Ir.func) =
  let fname = f.Ssair.Ir.fname in
  match Hashtbl.find_opt kc.kc_dep fname with
  | Some d -> d
  | None ->
    (* the absint summary shapes the edge block (pruned control edges),
       and ranges are interprocedural, so it must key the cached block *)
    let absint_d =
      match g.st.Phase3.absint with
      | Some ai -> Absint.summary_digest ai fname
      | None -> "no-absint"
    in
    let d =
      Digest_ir.of_value
        ( Hashtbl.find kc.kc_funcs fname,
          Digest_ir.facts_digest kc.kc_p1_by fname,
          Digest_ir.facts_digest kc.kc_pts_by fname,
          kc.kc_global,
          absint_d,
          callee_sigs g f )
    in
    Hashtbl.replace kc.kc_dep fname d;
    d

let pair_key g kc (f : Ssair.Ir.func) cid =
  let ctx_d =
    match Hashtbl.find_opt kc.kc_ctx cid with
    | Some d -> d
    | None ->
      let d = Digest_ir.of_value (Intern.Ctx.get g.ctxs cid) in
      Hashtbl.replace kc.kc_ctx cid d;
      d
  in
  Digest_ir.combine [ dep_digest g kc f; ctx_d ]

(* -- Wave-parallel pair building ----------------------------------------------- *)

(* Populate the [finfos] (CDG closures) and [own_lists] entries a wave's
   builders will read; must run on the main domain before workers start. *)
let prewarm_wave g (wave : (Ssair.Ir.func * int) array) =
  Array.iter
    (fun ((f : Ssair.Ir.func), _) ->
      ignore (finfo g f);
      ignore (own_list g f);
      List.iter
        (fun (i : Ssair.Ir.instr) ->
          match i.Ssair.Ir.idesc with
          | Ssair.Ir.Call { callee; _ } -> (
            match Hashtbl.find_opt g.funcs_by_name callee with
            | Some gfn -> ignore (own_list g gfn)
            | None -> ())
          | _ -> ())
        (Ssair.Ir.all_instrs f))
    wave

(* Build the given pairs, on a bounded domain pool when configured.
   Workers only read [g] (see {!build_pair_block}); results come back in
   input order, so the subsequent sequential replay is deterministic. *)
let build_many g (todo : (Ssair.Ir.func * Phase3.Ctx.t) array) : block array =
  let n = Array.length todo in
  let domains =
    let d = g.st.Phase3.config.Config.pair_domains in
    if d = 0 then Domain.recommended_domain_count () else d
  in
  let build (f : Ssair.Ir.func) ctx =
    Telemetry.span "pair.build"
      ~args:[ ("function", f.Ssair.Ir.fname) ]
      (fun () -> build_pair_block g f ctx)
  in
  Telemetry.add c_pair_tasks n;
  if n <= 1 || domains <= 1 then Array.map (fun (f, ctx) -> build f ctx) todo
  else begin
    let out : (block, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let active = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Telemetry.record_max c_pair_peak (Atomic.fetch_and_add active 1 + 1);
          let f, ctx = todo.(i) in
          out.(i) <- Some (try Ok (build f ctx) with e -> Error e);
          Atomic.decr active;
          loop ()
        end
      in
      loop ()
    in
    let extra = min (domains - 1) (n - 1) in
    let spawned = List.init (max 0 extra) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map (function Some (Ok b) -> b | Some (Error e) -> raise e | None -> assert false) out
  end

(* -- Entry point --------------------------------------------------------------- *)

let run ?(config = Config.default) ?cache ?digests ?absint (prog : Ssair.Ir.program)
    (shm : Shm.t) (p1 : Phase1.t) (pts : Pointsto.t) : Phase3.result =
  let st = Phase3.make_state ~config ?absint prog shm p1 pts in
  let g = create st in
  let kc =
    match (cache, digests) with
    | Some _, Some d -> Some (make_keyctx g d ~sem_fp:(Digest_ir.semantic_config config))
    | _ -> None
  in
  List.iter
    (fun (f, ctx) -> discover_pair g f (Intern.Ctx.intern g.ctxs ctx))
    (Phase3.root_pairs st);
  (* pair discovery is taint-independent, so building all pairs before
     draining reaches the same closure as interleaving would.  The
     pending queue is drained in waves: each wave is prewarmed and built
     (cache hits skipping the build; misses optionally in parallel),
     then replayed sequentially in discovery order — the same total
     order a sequential FIFO drain would produce, which keeps reports
     bit-identical across {cold, warm, parallel}. *)
  let rec waves () =
    if not (Queue.is_empty g.pending) then begin
      let wave = Array.of_seq (Queue.to_seq g.pending) in
      Queue.clear g.pending;
      prewarm_wave g wave;
      let keys =
        match (cache, kc) with
        | Some _, Some kc -> Array.map (fun (f, cid) -> Some (pair_key g kc f cid)) wave
        | _ -> Array.map (fun _ -> None) wave
      in
      let blocks : block option array =
        Array.map2
          (fun (_, _) key ->
            match (cache, key) with
            | Some c, Some k -> (Cache.find c ~ns:"pair" ~key:k : block option)
            | _ -> None)
          wave keys
      in
      let miss_idx =
        Array.to_list (Array.mapi (fun i b -> (i, b)) blocks)
        |> List.filter_map (fun (i, b) -> if b = None then Some i else None)
        |> Array.of_list
      in
      Telemetry.add c_pair_built (Array.length miss_idx);
      Telemetry.add c_pair_replayed (Array.length wave - Array.length miss_idx);
      let built =
        build_many g
          (Array.map
             (fun i ->
               let f, cid = wave.(i) in
               (f, Intern.Ctx.get g.ctxs cid))
             miss_idx)
      in
      Array.iteri
        (fun j i ->
          blocks.(i) <- Some built.(j);
          match (cache, keys.(i)) with
          | Some c, Some k -> Cache.store c ~ns:"pair" ~key:k built.(j)
          | _ -> ())
        miss_idx;
      Telemetry.span "phase3.replay" (fun () ->
          Array.iter (function Some b -> replay g b | None -> assert false) blocks);
      waves ()
    end
  in
  waves ();
  Telemetry.span "phase3.drain" (fun () -> drain g);
  Telemetry.add c_wl_pushes g.n_pushes;
  Telemetry.add c_wl_pops g.n_pops;
  Telemetry.add c_edges g.n_edges;
  Telemetry.add c_entities (Intern.length g.keys);
  Telemetry.add c_contexts (Intern.Ctx.length g.ctxs);
  (* pour the interned taints back into the shared state shape *)
  let entity_origin parents whys i =
    let p = parents.(i) in
    { Phase3.parent = (if p < 0 then None else Some g.rev.(p)); why = whys.(i) }
  in
  for i = 0 to Intern.length g.keys - 1 do
    if data_tainted g i then
      Hashtbl.replace st.Phase3.data g.rev.(i) (entity_origin g.d_parent g.d_why i);
    if ctrl_tainted g i then
      Hashtbl.replace st.Phase3.ctrl g.rev.(i) (entity_origin g.c_parent g.c_why i)
  done;
  st.Phase3.passes <- 1;
  st.Phase3.changed <- false;
  let dependencies = Phase3.collect_dependencies st in
  {
    Phase3.warnings =
      Hashtbl.fold (fun _ w acc -> w :: acc) st.Phase3.warnings []
      |> List.stable_sort Report.compare_warning;
    dependencies;
    passes = 1;
    pair_count = Hashtbl.length st.Phase3.pairs;
    engine_stats =
      [ ("vf_entities", Intern.length g.keys);
        ("vf_contexts", Intern.Ctx.length g.ctxs);
        ("vf_edges", g.n_edges);
        ("vf_pops", g.n_pops);
        ("vf_pushes", g.n_pushes) ];
    taint_state = st;
  }
