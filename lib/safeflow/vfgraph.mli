(** Sparse worklist phase-3 engine over an explicit value-flow graph.

    The legacy engine ({!Phase3.run}) is a dense fixpoint: every pass
    re-scans every instruction of every discovered (function, context)
    pair until no taint changes.  This engine visits each pair {e once}:
    on first discovery it builds the pair's value-flow successor edges
    (SSA def-use, load/store edges resolved by {!Pointsto}, call/return
    edges, control-dependence edges from the cached CDGs) and thereafter
    propagates newly-tainted entities along out-edges from a worklist.
    Entities and monitoring contexts are interned to dense integer ids
    ({!Intern}), so taint membership is an array lookup.

    Select it with [{ Config.default with engine = Config.Worklist }]
    (the {!Driver} dispatches on that flag).

    Equivalence with the legacy engine: warnings, violations, discovered
    pairs and dependency classifications are identical (asserted by
    [test/test_engine_equiv.ml]).  Two deliberate, report-invisible
    deviations: propagation-trace parents may differ (both engines pick
    an arbitrary witness path), and control-taint is propagated
    monotonically where the legacy engine's data-taint branch shadows
    its control branch — the extra control marks land only on entities
    that are also data-tainted, and data shadows control everywhere the
    report classifies, so classifications agree. *)

(** CSR (compressed sparse row) adjacency over dense entity ids: the
    flat edge list the replay appends to is finalized once — between the
    last block replay and the worklist drain — into offset/target/info
    arrays, so the drain walks each entity's successors as one array
    slice.  Exposed for the property tests in [test/test_csr.ml]. *)
module Csr : sig
  type t = { off : int array; dst : int array; info : int array }

  val build : n:int -> src:int array -> dst:int array -> info:int array -> len:int -> t
  (** [build ~n ~src ~dst ~info ~len] sorts the first [len] edges
      [(src.(i), dst.(i), info.(i))] (source ids in [0, n)) into
      row-major adjacency.  Each row reads in {e reverse insertion
      order}, reproducing the cons-list adjacency this layout replaced
      (first-win taint origins depend on it). *)

  val degree : t -> int -> int

  val row : t -> int -> (int * int) list
  (** [(dst, info)] successors of a source, in row (= iteration)
      order *)
end

val run :
  ?config:Config.t ->
  ?cache:Cache.t ->
  ?digests:Digest_ir.t ->
  ?absint:Absint.t ->
  Ssair.Ir.program ->
  Shm.t ->
  Phase1.t ->
  Pointsto.t ->
  Phase3.result
(** drop-in replacement for {!Phase3.run}; [?absint] prunes control
    dependence of branches whose direction the value-range analysis
    decides (precision-only, mirrored in the legacy engine);
    [result.passes] is 1 and
    [result.engine_stats] reports interned-entity, edge and worklist-pop
    counters.

    With [~cache] and [~digests], each (function, context) edge block is
    keyed on a content digest of everything its builder reads (function
    body, its phase-1 and points-to facts, the region model, heap graph,
    type environment, callee signatures and own-assumptions, semantic
    config, monitoring context) — a warm rerun replays cached blocks
    without re-scanning any instruction, and a one-function edit rebuilds
    only the pairs whose dependency digest changed.

    With [config.pair_domains] ≠ 1, cache-miss blocks of each discovery
    wave are built on a bounded pool of domains; blocks are still
    replayed sequentially in discovery order, so reports are bit-identical
    to the sequential run. *)
