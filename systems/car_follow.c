/* ============================================================================
 * Longitudinal car-following core controller (adaptive cruise).
 *
 * A demonstration system for the paper's third monitoring example: "in our
 * own experience with autonomous car controllers at UIUC, control outputs
 * are monitored for potential collisions with other cars or obstacles
 * before being applied to a car actuator" (§1).  It also exercises the
 * message-passing extension of §3.4.3: speed commands arrive over a
 * non-core telematics socket via recv() and must be monitored before use.
 *
 * Shared memory:
 *   fbShm   - published range/speed feedback (non-core readable)
 *   ncCtrl  - acceleration command from the non-core trajectory planner
 *   wdInfo  - watchdog block
 *
 * Message passing:
 *   telemSocket - non-core socket delivering target-speed commands
 *
 * Expected SafeFlow findings (pinned in test/test_extensions.ml):
 *   - ERROR 1: the raw telematics target speed (received over the
 *     non-core socket, used without monitoring) flows into the commanded
 *     acceleration.
 *   - ERROR 2: the watchdog kill() pid from unmonitored shared memory.
 *   - warnings for the unmonitored non-core reads;
 *   - the monitored planner-command path (collision check) is clean, and
 *     so is the monitored telematics path.
 * ==========================================================================*/

struct RangeFeedback {
  double gap;          /* distance to the lead vehicle [m]        */
  double rel_speed;    /* closing speed [m/s]                     */
  double own_speed;    /* ego vehicle speed [m/s]                 */
  long   seq;
};
typedef struct RangeFeedback RangeFeedback;

struct PlannerCmd {
  double accel;        /* requested acceleration [m/s^2]          */
  long   seq;
  int    valid;
  int    pad;
};
typedef struct PlannerCmd PlannerCmd;

struct WatchdogInfo {
  int    nc_pid;
  int    enable;
};
typedef struct WatchdogInfo WatchdogInfo;

RangeFeedback *fbShm;
PlannerCmd    *ncCtrl;
WatchdogInfo  *wdInfo;

int shmLock;
int telemSocket;

/* core state */
double gapEst;
double relSpeedEst;
double ownSpeedEst;
double cruiseTarget = 25.0;   /* m/s */
double accelMax = 2.0;
double accelMin = -6.0;       /* full braking */
double minGap = 8.0;
double headwaySeconds = 1.6;
double speedCmdMax = 35.0;    /* legal ceiling for telematics commands */
long   loopCount;
long   lastPlannerSeq;
long   watchBeat;
int    ncChildPid;
long   periodUs = 20000;

extern double readRadarGap(void);
extern double readRadarRelSpeed(void);
extern double readWheelSpeed(void);
extern void   sendAccel(double a);
extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern void   log_event(char *msg, double value);
extern long   recv(int socket, double *buffer, long length, int flags);
extern int    spawn_noncore(void);

/* =================================================== initialization ====== */

void initComm()
/*** SafeFlow Annotation shminit assume(noncore(telemSocket)) ***/
{
  int shmid;
  void *base;
  char *cursor;
  shmid = shmget(5004, sizeof(RangeFeedback) + sizeof(PlannerCmd)
                       + sizeof(WatchdogInfo), 438);
  base = shmat(shmid, (void *) 0, 0);
  cursor = (char *) base;
  fbShm = (RangeFeedback *) cursor;
  cursor = cursor + sizeof(RangeFeedback);
  ncCtrl = (PlannerCmd *) cursor;
  cursor = cursor + sizeof(PlannerCmd);
  wdInfo = (WatchdogInfo *) cursor;
  telemSocket = 5;
  InitCheck(base, sizeof(RangeFeedback) + sizeof(PlannerCmd) + sizeof(WatchdogInfo));
  /*** SafeFlow Annotation
       assume(shmvar(fbShm, sizeof(RangeFeedback)))
       assume(shmvar(ncCtrl, sizeof(PlannerCmd)))
       assume(shmvar(wdInfo, sizeof(WatchdogInfo)))
       assume(noncore(fbShm))
       assume(noncore(ncCtrl))
       assume(noncore(wdInfo)) ***/
}

/* ===================================================== sensing =========== */

void senseRange()
{
  gapEst = readRadarGap();
  relSpeedEst = readRadarRelSpeed();
  ownSpeedEst = readWheelSpeed();
}

void publishFeedback()
{
  fbShm->gap = gapEst;
  fbShm->rel_speed = relSpeedEst;
  fbShm->own_speed = ownSpeedEst;
  fbShm->seq = loopCount;
}

/* =============================================== core cruise control ===== */

double clampAccel(double a)
{
  if (a > accelMax) {
    return accelMax;
  }
  if (a < accelMin) {
    return accelMin;
  }
  return a;
}

/* conservative spacing controller: keep a time-headway gap */
double computeSafeAccel()
{
  double desiredGap = minGap + headwaySeconds * ownSpeedEst;
  double gapError = gapEst - desiredGap;
  double a = 0.25 * gapError - 0.9 * relSpeedEst
           + 0.15 * (cruiseTarget - ownSpeedEst);
  return clampAccel(a);
}

/* ======================================================= monitors ======== */

/*
 * Collision monitor: accept a proposed acceleration only if, assuming the
 * lead vehicle brakes hard, the ego vehicle can still stop outside the
 * minimum gap — the recoverability check of the car controllers the
 * paper cites.
 */
int collisionCheck(double a)
{
  double v = ownSpeedEst;
  double gap = gapEst;
  double closing = relSpeedEst;
  double horizon = 0.4;  /* hold the command before worst-case braking */
  double v1 = v + a * horizon;
  double gap1 = gap - (closing + a * horizon * 0.5) * horizon;
  double stopEgo = v1 * v1 / 12.0;               /* |accelMin| = 6 m/s^2 */
  double leadSpeed = v1 - closing;
  double stopLead = leadSpeed * leadSpeed / 12.0;
  if (gap1 + stopLead - stopEgo < minGap) {
    return 0;
  }
  return 1;
}

/* monitoring function for the planner command in shared memory */
int checkPlannerCmd(double *out)
/*** SafeFlow Annotation assume(core(ncCtrl, 0, sizeof(PlannerCmd))) ***/
{
  double a;
  if (ncCtrl->valid != 1) {
    return 0;
  }
  if (ncCtrl->seq + 4 < lastPlannerSeq) {
    return 0;
  }
  a = ncCtrl->accel;
  if (a != a) {
    return 0;
  }
  if (a > accelMax || a < accelMin) {
    return 0;
  }
  if (collisionCheck(a) == 0) {
    return 0;
  }
  *out = a;
  return 1;
}

/*
 * Monitoring function for telematics speed commands received over the
 * non-core socket (§3.4.3): the received buffer may be dereferenced here
 * because every value is range-checked before escaping.
 */
double checkSpeedCommand(double *buffer)
/*** SafeFlow Annotation assume(core(buffer, 0, 8)) ***/
{
  double v = buffer[0];
  if (v != v) {
    return cruiseTarget;
  }
  if (v < 0.0 || v > speedCmdMax) {
    return cruiseTarget;
  }
  return v;
}

/* ======================================================= decision ======== */

double decision(double safeAccel)
{
  double a = 0.0;
  if (checkPlannerCmd(&a)) {
    return a;
  }
  return safeAccel;
}

/* ============================================ telematics reception ======= */

/*
 * The MONITORED path: the received command is validated before becoming
 * the cruise target.
 */
void receiveSpeedCommand()
{
  double buf[1];
  long got = recv(telemSocket, buf, 8, 0);
  if (got == 8) {
    cruiseTarget = checkSpeedCommand(buf);
  }
}

/*
 * ERROR 1 SOURCE: the "eco coasting" feature uses the raw received value
 * directly as a speed delta — unmonitored non-core data flowing into the
 * acceleration command.
 */
double ecoCoastAdjust()
{
  double buf[1];
  long got = recv(telemSocket, buf, 8, 0);
  if (got == 8) {
    return 0.01 * buf[0];
  }
  return 0.0;
}

/* ============================================ supervision ================ */

/* ERROR 2 SOURCE: kill() pid from unmonitored shared memory */
void supervisePlanner()
{
  int armed = wdInfo->enable;
  if (armed == 1) {
    long seq = ncCtrl->seq;
    if (seq == watchBeat) {
      int pid = wdInfo->nc_pid;
      kill(pid, 9);
      log_event("planner restarted", (double) pid);
    }
    watchBeat = seq;
  }
}

/* ========================================================= main ========== */

int main()
{
  double safeAccel;
  double accel;

  initComm();
  ncChildPid = spawn_noncore();

  while (loopCount < 100000) {
    senseRange();
    Lock(shmLock);
    publishFeedback();
    Unlock(shmLock);

    safeAccel = computeSafeAccel();
    wait_period(periodUs);

    receiveSpeedCommand();

    Lock(shmLock);
    accel = decision(safeAccel);
    Unlock(shmLock);

    accel = accel + ecoCoastAdjust();
    /*** SafeFlow Annotation assert(safe(accel)) ***/
    sendAccel(accel);

    if (loopCount % 50 == 49) {
      supervisePlanner();
    }
    loopCount = loopCount + 1;
  }
  return 0;
}
