/* Figure 2 of the paper: simplified core controller of the Simplex
 * architecture implementation for the inverted pendulum.
 *
 * The analysis should report:
 *  - warnings for every unmonitored read of the non-core regions
 *    (feedback dereferences in checkSafety and computeSafety);
 *  - an error dependency for assert(safe(output)): the safe control value
 *    is computed from the unmonitored feedback region, so the critical
 *    output is data-dependent on non-core values.  The paper's suggested
 *    fix is to pass a monitored local copy of the feedback instead.
 */

struct SHMData {
  double control;
  double track;
  double angle;
};
typedef struct SHMData SHMData;

SHMData *noncoreCtrl;
SHMData *feedback;
int shmLock;

extern void getFeedback(SHMData *f);
extern void sendControl(double out);
extern void Lock(int l);
extern void Unlock(int l);
extern void wait_period(int msecs);

void initComm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  shmid = shmget(9000, 2 * sizeof(SHMData), 438);
  shmStart = shmat(shmid, (void *) 0, 0);
  feedback = (SHMData *) shmStart;
  noncoreCtrl = feedback + 1;
  InitCheck(shmStart, 2 * sizeof(SHMData));
  /*** SafeFlow Annotation
       assume(shmvar(feedback, sizeof(SHMData)))
       assume(shmvar(noncoreCtrl, sizeof(SHMData)))
       assume(noncore(feedback))
       assume(noncore(noncoreCtrl)) ***/
}

int checkSafety(SHMData *f, SHMData *nc)
{
  double t = f->track;
  double a = f->angle;
  double c = nc->control;
  if (c > 5.0 || c < -5.0) {
    return 0;
  }
  if (t * t + 4.0 * a * a > 1.0) {
    return 0;
  }
  return 1;
}

double decision(SHMData *f, double safeControl, SHMData *nc)
/*** SafeFlow Annotation assume(core(noncoreCtrl, 0, sizeof(SHMData))) ***/
{
  if (checkSafety(f, nc)) {
    return nc->control;
  }
  return safeControl;
}

void computeSafety(SHMData *f, double *safeControl)
{
  *safeControl = 0.0 - (1.2 * f->angle + 0.4 * f->track);
}

int main()
{
  double safeControl;
  double output;
  int steps = 0;
  initComm();
  while (steps < 1000) {
    getFeedback(feedback);
    computeSafety(feedback, &safeControl);
    Unlock(shmLock);
    wait_period(20);
    Lock(shmLock);
    output = decision(feedback, safeControl, noncoreCtrl);
    /*** SafeFlow Annotation assert(safe(output)) ***/
    sendControl(output);
    steps = steps + 1;
  }
  return 0;
}
