/* ============================================================================
 * Generic Simplex architecture core — configurable for simple plants.
 *
 * Reconstruction of the second subject system of the paper ("Generic
 * Simplex" row of Table 1).  The controller is parameterized by a plant
 * description loaded from the core's own configuration file; the non-core
 * subsystem additionally publishes a runtime configuration block in
 * shared memory (which of its features are active, UI commands, ...).
 *
 * Shared memory regions (all writable by the non-core subsystem):
 *   cfgShm   - runtime configuration published by the non-core launcher
 *   fbShm    - plant feedback published by the core
 *   ncCtrl   - control output of the non-core controller
 *   ncStatus - non-core heartbeat and status
 *   wdInfo   - watchdog info (non-core pid)
 *   uiShm    - operator commands entered through the non-core GUI
 *   tuneShm  - tuning readout published by the core for the GUI
 *
 * Findings reproduced from the paper's evaluation:
 *   - ERROR 1: the safety control value is computed from the feedback
 *     *read back from shared memory* after publication.  The feedback
 *     region is writable by the non-core subsystem, so the critical
 *     output is data-dependent on unmonitored non-core values ("rigged
 *     feedback": a faulty non-core component can overwrite the feedback
 *     and defeat the recoverability argument).
 *   - ERROR 2: the watchdog kill() pid is read from unmonitored shared
 *     memory.
 *   - 7 warnings for the unmonitored non-core reads.
 *   - 6 false positives: critical values control-dependent on the
 *     non-core configuration/UI flags; in every path the values are
 *     computed from core data, but the analysis cannot know that the
 *     selection is harmless (paper §3.4.1 discusses exactly this system).
 * ==========================================================================*/

/* ---------------------------------------------------------------- types -- */

struct SysConfig {
  int    use_complex;   /* non-core controller present / enabled        */
  int    mode;          /* operating mode requested by the non-core     */
  int    ui_enabled;
  int    pad;
  long   config_epoch;
};
typedef struct SysConfig SysConfig;

struct Feedback {
  double y[4];          /* published plant state                        */
  long   seq;
  long   timestamp;
};
typedef struct Feedback Feedback;

struct NCControl {
  double control;
  long   seq;
  int    valid;
  int    pad;
};
typedef struct NCControl NCControl;

struct NCStatus {
  long   heartbeat;
  int    state;
  int    pad;
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;
  int    armed;
};
typedef struct WatchdogInfo WatchdogInfo;

struct UICommand {
  int    cmd;           /* operator request relayed by the GUI          */
  int    arg;
  long   seq;
};
typedef struct UICommand UICommand;

struct TuneReadout {
  double gains[4];
  double envelope;
  long   epoch;
};
typedef struct TuneReadout TuneReadout;

/* ------------------------------------------------------ shared memory --- */

SysConfig    *cfgShm;
Feedback     *fbShm;
NCControl    *ncCtrl;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;
UICommand    *uiShm;
TuneReadout  *tuneShm;

int shmLock;

/* ------------------------------------------------------- core state ----- */

/* plant description loaded from the core's own configuration file */
int    plantDim;
double plantA[16];       /* row-major state matrix (up to 4x4) */
double plantB[4];
double safetyGain[4];
double lyapP[16];
double lyapEnvelope;

/* sensing */
double sensorRaw[4];
double firCoeff[8] = { 0.30, 0.22, 0.16, 0.12, 0.08, 0.06, 0.04, 0.02 };
double firHist[32];      /* 4 channels x 8 taps */
int    firHead;

/* estimation */
double stateEst[4];
double stateSmooth[4];

/* actuation */
double uMax = 5.0;
double uMin = -5.0;
double prevOutput;
double outputTrimBase = 0.02;
double rampStep = 0.5;

/* bookkeeping */
long   loopCount;
long   lastNCSeq;
int    acceptCount;
int    rejectCount;
int    staleCount;
int    faultCount;
int    ncChildPid;
long   diagTick;

long   periodUs = 10000;

/* --------------------------------------------------------- externs ------ */

extern double readSensorChannel(int channel);
extern void   sendControl(double u);
extern void   sendAuxControl(double u);
extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern long   current_time(void);
extern void   log_event(char *msg, double value);
extern double readConfigValue(int index);
extern int    spawn_noncore(void);

/* =================================================== initialization ====== */

void initShm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  char *cursor;
  long total;

  total = sizeof(SysConfig) + sizeof(Feedback) + sizeof(NCControl)
        + sizeof(NCStatus) + sizeof(WatchdogInfo) + sizeof(UICommand)
        + sizeof(TuneReadout);
  shmid = shmget(5002, total, 438);
  shmStart = shmat(shmid, (void *) 0, 0);

  cursor = (char *) shmStart;
  cfgShm = (SysConfig *) cursor;
  cursor = cursor + sizeof(SysConfig);
  fbShm = (Feedback *) cursor;
  cursor = cursor + sizeof(Feedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;
  cursor = cursor + sizeof(WatchdogInfo);
  uiShm = (UICommand *) cursor;
  cursor = cursor + sizeof(UICommand);
  tuneShm = (TuneReadout *) cursor;

  InitCheck(shmStart, total);
  /*** SafeFlow Annotation
       assume(shmvar(cfgShm, sizeof(SysConfig)))
       assume(shmvar(fbShm, sizeof(Feedback)))
       assume(shmvar(ncCtrl, sizeof(NCControl)))
       assume(shmvar(ncStatus, sizeof(NCStatus)))
       assume(shmvar(wdInfo, sizeof(WatchdogInfo)))
       assume(shmvar(uiShm, sizeof(UICommand)))
       assume(shmvar(tuneShm, sizeof(TuneReadout)))
       assume(noncore(cfgShm))
       assume(noncore(fbShm))
       assume(noncore(ncCtrl))
       assume(noncore(ncStatus))
       assume(noncore(wdInfo))
       assume(noncore(uiShm))
       assume(noncore(tuneShm)) ***/
}

/* the plant description comes from the core's own (trusted) config file */
void loadPlantDescription()
{
  int i;
  plantDim = (int) readConfigValue(0);
  if (plantDim < 1) {
    plantDim = 1;
  }
  if (plantDim > 4) {
    plantDim = 4;
  }
  for (i = 0; i < 16; i++) {
    plantA[i] = readConfigValue(1 + i);
  }
  for (i = 0; i < 4; i++) {
    plantB[i] = readConfigValue(17 + i);
  }
  for (i = 0; i < 4; i++) {
    safetyGain[i] = readConfigValue(21 + i);
  }
  for (i = 0; i < 16; i++) {
    lyapP[i] = readConfigValue(25 + i);
  }
  lyapEnvelope = readConfigValue(41);
  log_event("plant description loaded", (double) plantDim);
}

void initCoreState()
{
  int i;
  for (i = 0; i < 4; i++) {
    sensorRaw[i] = 0.0;
    stateEst[i] = 0.0;
    stateSmooth[i] = 0.0;
  }
  for (i = 0; i < 32; i++) {
    firHist[i] = 0.0;
  }
  firHead = 0;
  prevOutput = 0.0;
  loopCount = 0;
  lastNCSeq = 0;
  acceptCount = 0;
  rejectCount = 0;
  staleCount = 0;
  faultCount = 0;
  diagTick = 0;
}

/* ===================================================== sensor module ===== */

void sampleSensors()
{
  int ch;
  for (ch = 0; ch < plantDim; ch++) {
    sensorRaw[ch] = readSensorChannel(ch);
  }
}

/* per-channel FIR low-pass over the last 8 samples */
double firFilter(int channel)
{
  int tap;
  int idx;
  double acc = 0.0;
  for (tap = 0; tap < 8; tap++) {
    idx = (firHead - tap + 8) % 8;
    acc = acc + firCoeff[tap] * firHist[channel * 8 + idx];
  }
  return acc;
}

void updateFilters()
{
  int ch;
  firHead = (firHead + 1) % 8;
  for (ch = 0; ch < plantDim; ch++) {
    firHist[ch * 8 + firHead] = sensorRaw[ch];
  }
  for (ch = 0; ch < plantDim; ch++) {
    stateSmooth[ch] = firFilter(ch);
  }
}

/* sanity limits on the raw channels */
int validateSensors()
{
  int ch;
  int ok = 1;
  for (ch = 0; ch < plantDim; ch++) {
    if (sensorRaw[ch] > 100.0 || sensorRaw[ch] < -100.0) {
      log_event("sensor channel out of range", (double) ch);
      faultCount = faultCount + 1;
      ok = 0;
    }
  }
  return ok;
}

/* ==================================================== state estimation === */

void estimateState()
{
  int i;
  for (i = 0; i < plantDim; i++) {
    /* blend smoothed and raw to bound filter lag */
    stateEst[i] = 0.8 * stateSmooth[i] + 0.2 * sensorRaw[i];
  }
  for (i = plantDim; i < 4; i++) {
    stateEst[i] = 0.0;
  }
}

/* ================================================= safety controller ===== */

double clampOutput(double u)
{
  if (u > uMax) {
    return uMax;
  }
  if (u < uMin) {
    return uMin;
  }
  return u;
}

/*
 * ERROR 1 SOURCE: the safety control is computed from the feedback block
 * read back out of shared memory rather than from the core's own state
 * estimate.  The published values are supposed to be read-only for the
 * non-core subsystem, but nothing enforces that; SafeFlow treats every
 * value read from the non-core region as unsafe.
 */
double computeSafeControl()
{
  int i;
  double u = 0.0;
  /* gains beyond plantDim are zero, so the constant bound is harmless
     and keeps the shared-array indexing provably affine (rule A2) */
  for (i = 0; i < 4; i++) {
    u = u - safetyGain[i] * fbShm->y[i];
  }
  return clampOutput(u);
}

/* ======================================================= monitor ========= */

double lyapValueOf(double *x)
{
  int i;
  int j;
  double v = 0.0;
  for (i = 0; i < plantDim; i++) {
    for (j = 0; j < plantDim; j++) {
      v = v + x[i] * lyapP[i * 4 + j] * x[j];
    }
  }
  return v;
}

/* one-step prediction under input u from the core's state estimate */
void predictNext(double u, double *next)
{
  int i;
  int j;
  double dt = (double) periodUs / 1000000.0;
  for (i = 0; i < plantDim; i++) {
    double acc = 0.0;
    for (j = 0; j < plantDim; j++) {
      acc = acc + plantA[i * 4 + j] * stateEst[j];
    }
    next[i] = stateEst[i] + dt * (acc + plantB[i] * u);
  }
  for (i = plantDim; i < 4; i++) {
    next[i] = 0.0;
  }
}

/* monitoring function for the non-core control output */
int checkNonCoreControl(double *ncOut)
/*** SafeFlow Annotation assume(core(ncCtrl, 0, sizeof(NCControl))) ***/
{
  double u;
  double next[4];
  long seq;

  if (ncCtrl->valid != 1) {
    return 0;
  }
  seq = ncCtrl->seq;
  if (seq + 4 < lastNCSeq) {
    return 0;
  }
  u = ncCtrl->control;
  if (u != u) {
    return 0;
  }
  if (u > uMax || u < uMin) {
    return 0;
  }
  predictNext(u, next);
  if (lyapValueOf(next) > lyapEnvelope) {
    return 0;
  }
  *ncOut = u;
  return 1;
}

/* ======================================================= decision ======== */

double decision(double safeControl)
{
  double ncOut = 0.0;
  if (checkNonCoreControl(&ncOut)) {
    acceptCount = acceptCount + 1;
    return ncOut;
  }
  rejectCount = rejectCount + 1;
  return safeControl;
}

/* ================================================== publication ========== */

void publishFeedback()
{
  int i;
  for (i = 0; i < 4; i++) {
    fbShm->y[i] = stateEst[i];
  }
  fbShm->seq = loopCount;
  fbShm->timestamp = current_time();
}

/* publish the current tuning for the GUI (write-only towards non-core) */
void publishTuning()
{
  int i;
  for (i = 0; i < 4; i++) {
    tuneShm->gains[i] = safetyGain[i];
  }
  tuneShm->envelope = lyapEnvelope;
  tuneShm->epoch = loopCount;
}

/* ============================================ supervision / watchdog ===== */

/*
 * ERROR 2 SOURCE: the pid handed to kill() is read from the unmonitored
 * watchdog block in shared memory.
 */
void superviseNonCore()
{
  long hb = ncStatus->heartbeat;
  if (hb == diagTick) {
    int pid = wdInfo->nc_pid;
    kill(pid, 9);
    wdInfo->armed = 0;
    log_event("non-core restarted by watchdog", (double) pid);
  }
  diagTick = hb;
}

/* ================================================== mode handling ======== */

/*
 * The remaining functions read the non-core configuration and UI blocks
 * without monitoring and use them ONLY to select between core-computed
 * values.  Each selection makes a critical value control-dependent on a
 * non-core value: SafeFlow reports all six, and §3.4.1 of the paper
 * explains why these particular reports are false positives that must be
 * reviewed by hand (and why restructuring the configuration into a core
 * component would be the better design).
 */

/* FP 1+2: the operating mode selects output trim and ramp handling —
 * both candidates are core constants, only the selection is non-core */
void modePolicy(double *trim, double *step)
{
  int m = cfgShm->mode;
  double t = outputTrimBase;
  double s = rampStep;
  if (m == 2) {
    t = outputTrimBase * 0.5;
    s = rampStep * 0.25;
  }
  /*** SafeFlow Annotation assert(safe(t)) ***/
  /*** SafeFlow Annotation assert(safe(s)) ***/
  *trim = t;
  *step = s;
}

/* FP 3+4: presence of the complex controller selects bias/calibration */
void presencePolicy(double *bias, double *cal)
{
  int have = cfgShm->use_complex;
  double b = 0.01;
  double k = 1.0;
  if (have == 1) {
    b = 0.005;
    k = 1.02;
  }
  /*** SafeFlow Annotation assert(safe(b)) ***/
  /*** SafeFlow Annotation assert(safe(k)) ***/
  *bias = b;
  *cal = k;
}

/* FP 5+6: operator commands gate the auxiliary jog channel (core data)
 * and a reload signal to the non-core process (pid from spawn time) */
void handleOperator()
{
  int c = uiShm->cmd;
  double aux = 0.0;
  if (c == 1) {
    aux = stateEst[0] * 0.1;
  }
  /*** SafeFlow Annotation assert(safe(aux)) ***/
  sendAuxControl(aux);
  if (c == 2) {
    kill(ncChildPid, 10);
    log_event("operator requested non-core reload", (double) c);
  }
}

/* freshness diagnostics on the non-core output (warning only) */
void trackFreshness()
{
  long seq = ncCtrl->seq;
  if (seq == lastNCSeq) {
    staleCount = staleCount + 1;
  } else {
    staleCount = 0;
  }
  lastNCSeq = seq;
}

/* =========================================== diagnostics ================= */

void runDiagnostics()
{
  int i;
  double residual = 0.0;
  for (i = 0; i < plantDim; i++) {
    double d = stateEst[i] - stateSmooth[i];
    residual = residual + d * d;
  }
  if (residual > 4.0) {
    faultCount = faultCount + 1;
    log_event("estimator residual high", residual);
  }
  if (faultCount > 50) {
    log_event("fault threshold exceeded", (double) faultCount);
  }
}


/* ================================================ observer module ======== */

/* a Luenberger observer runs alongside the FIR estimate; its innovation
 * is the primary estimator-health signal */
double obsState[4];
double obsGain[4];
double obsInnovation[4];
double obsInnovationNorm;

void initObserver()
{
  int i;
  for (i = 0; i < 4; i++) {
    obsState[i] = 0.0;
    obsInnovation[i] = 0.0;
    /* observer gain from the trusted configuration file */
    obsGain[i] = readConfigValue(42 + i);
  }
  obsInnovationNorm = 0.0;
}

void observerPredict(double u)
{
  int i;
  int j;
  double dt = (double) periodUs / 1000000.0;
  double next[4];
  for (i = 0; i < 4; i++) {
    double acc = 0.0;
    for (j = 0; j < 4; j++) {
      acc = acc + plantA[i * 4 + j] * obsState[j];
    }
    next[i] = obsState[i] + dt * (acc + plantB[i] * u);
  }
  for (i = 0; i < 4; i++) {
    obsState[i] = next[i];
  }
}

void observerCorrect()
{
  int i;
  double norm = 0.0;
  for (i = 0; i < 4; i++) {
    obsInnovation[i] = sensorRaw[i] - obsState[i];
    obsState[i] = obsState[i] + obsGain[i] * obsInnovation[i];
    norm = norm + obsInnovation[i] * obsInnovation[i];
  }
  obsInnovationNorm = norm;
}

int observerHealthy()
{
  if (obsInnovationNorm > 9.0) {
    return 0;
  }
  return 1;
}

/* ============================================ configuration validation === */

/* the plant description from the core's configuration file is validated
 * before the controller may start: magnitudes, symmetry of the Lyapunov
 * matrix, and positivity of its diagonal */
int configValid;

int validateMatrixMagnitudes()
{
  int i;
  for (i = 0; i < 16; i++) {
    if (plantA[i] > 1000.0 || plantA[i] < -1000.0) {
      log_event("plant matrix entry out of range", plantA[i]);
      return 0;
    }
  }
  for (i = 0; i < 4; i++) {
    if (plantB[i] > 100.0 || plantB[i] < -100.0) {
      log_event("input vector entry out of range", plantB[i]);
      return 0;
    }
  }
  return 1;
}

int validateLyapunovShape()
{
  int i;
  int j;
  for (i = 0; i < 4; i++) {
    if (lyapP[i * 4 + i] <= 0.0) {
      log_event("Lyapunov diagonal not positive", lyapP[i * 4 + i]);
      return 0;
    }
  }
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) {
      double d = lyapP[i * 4 + j] - lyapP[j * 4 + i];
      if (d > 0.0001 || d < -0.0001) {
        log_event("Lyapunov matrix not symmetric", d);
        return 0;
      }
    }
  }
  if (lyapEnvelope <= 0.0) {
    log_event("Lyapunov envelope not positive", lyapEnvelope);
    return 0;
  }
  return 1;
}

int validateGains()
{
  int i;
  double mag = 0.0;
  for (i = 0; i < 4; i++) {
    mag = mag + safetyGain[i] * safetyGain[i];
  }
  if (mag < 0.0001) {
    log_event("safety gain vector is zero", mag);
    return 0;
  }
  if (mag > 1000000.0) {
    log_event("safety gain vector too large", mag);
    return 0;
  }
  return 1;
}

int validateConfiguration()
{
  if (validateMatrixMagnitudes() == 0) {
    return 0;
  }
  if (validateLyapunovShape() == 0) {
    return 0;
  }
  if (validateGains() == 0) {
    return 0;
  }
  log_event("configuration validated", (double) plantDim);
  return 1;
}

/* ================================================ state watchpoints ====== */

/* per-state soft limits with per-state grace counters */
double watchLow[4];
double watchHigh[4];
int    watchGrace[4];
int    watchTripped[4];

void initWatchpoints()
{
  int i;
  for (i = 0; i < 4; i++) {
    watchLow[i] = readConfigValue(46 + i);
    watchHigh[i] = readConfigValue(50 + i);
    watchGrace[i] = 0;
    watchTripped[i] = 0;
  }
}

void updateWatchpoints()
{
  int i;
  for (i = 0; i < plantDim; i++) {
    if (stateEst[i] < watchLow[i] || stateEst[i] > watchHigh[i]) {
      watchGrace[i] = watchGrace[i] + 1;
      if (watchGrace[i] > 5 && watchTripped[i] == 0) {
        watchTripped[i] = 1;
        log_event("state watchpoint tripped", (double) i);
      }
    } else {
      watchGrace[i] = 0;
      watchTripped[i] = 0;
    }
  }
}

int anyWatchpointTripped()
{
  int i;
  for (i = 0; i < plantDim; i++) {
    if (watchTripped[i] == 1) {
      return 1;
    }
  }
  return 0;
}

/* ============================================ reference trajectory ======= */

/* smooth setpoint profile for the first state: trapezoidal ramp between
 * operator-independent scheduled positions (core data only) */
double refTarget;
double refCurrent;
double refRate = 0.002;

void updateReference()
{
  double d = refTarget - refCurrent;
  if (d > refRate) {
    refCurrent = refCurrent + refRate;
  } else {
    if (d < -refRate) {
      refCurrent = refCurrent - refRate;
    } else {
      refCurrent = refTarget;
    }
  }
}

void scheduleReference()
{
  /* alternate between two scheduled positions every 4000 periods */
  long phase = (loopCount / 4000) % 2;
  if (phase == 0) {
    refTarget = 0.0;
  } else {
    refTarget = 0.2;
  }
}

/* ================================================ telemetry ring ========= */

struct TelemetryRecord {
  long   tick;
  double y0;
  double output;
  double innovation;
  int    mode;
};
typedef struct TelemetryRecord TelemetryRecord;

TelemetryRecord telemetryRing[64];
int telemetryHead;

void telemetryRecord(double output)
{
  TelemetryRecord *slot = &telemetryRing[telemetryHead];
  slot->tick = loopCount;
  slot->y0 = stateEst[0];
  slot->output = output;
  slot->innovation = obsInnovationNorm;
  slot->mode = 0;
  telemetryHead = (telemetryHead + 1) % 64;
}

void telemetryFlush()
{
  int i;
  int idx = telemetryHead;
  for (i = 0; i < 8; i++) {
    idx = idx - 1;
    if (idx < 0) {
      idx = 63;
    }
    log_event("telemetry y0", telemetryRing[idx].y0);
    log_event("telemetry innovation", telemetryRing[idx].innovation);
  }
}

/* ================================================ startup self test ====== */

int selfTestPassed;

double channelNoise(int ch)
{
  int i;
  double sum = 0.0;
  double sumsq = 0.0;
  for (i = 0; i < 32; i++) {
    double v = readSensorChannel(ch);
    sum = sum + v;
    sumsq = sumsq + v * v;
    wait_period(500);
  }
  return (sumsq - sum * sum / 32.0) / 31.0;
}

int runSelfTest()
{
  int ch;
  for (ch = 0; ch < plantDim; ch++) {
    double var = channelNoise(ch);
    if (var < 0.0 || var > 0.02) {
      log_event("sensor channel noise out of spec", (double) ch);
      return 0;
    }
  }
  sendControl(0.05);
  wait_period(2000);
  sendControl(-0.05);
  wait_period(2000);
  sendControl(0.0);
  log_event("self test passed", (double) plantDim);
  return 1;
}

/* ================================================ shutdown sequence ====== */

void shutdownRamp(double fromOutput)
{
  double u = fromOutput;
  int i;
  for (i = 0; i < 20; i++) {
    u = u * 0.75;
    sendControl(u);
    wait_period(periodUs);
  }
  sendControl(0.0);
  log_event("shutdown ramp complete", 0.0);
}


/* ================================================ gain scheduling ======== */

/* the safety gain is scheduled over three operating envelopes derived
 * from the core's own state magnitude; schedule entries come from the
 * trusted configuration file */
double gainSchedule[12];   /* 3 envelopes x 4 gains */
double envelopeBreaks[2];
int    activeEnvelope;

void initGainSchedule()
{
  int i;
  for (i = 0; i < 12; i++) {
    gainSchedule[i] = readConfigValue(54 + i);
  }
  envelopeBreaks[0] = readConfigValue(66);
  envelopeBreaks[1] = readConfigValue(67);
  activeEnvelope = 0;
}

double stateMagnitude()
{
  int i;
  double m = 0.0;
  for (i = 0; i < plantDim; i++) {
    m = m + stateEst[i] * stateEst[i];
  }
  return m;
}

void updateGainSchedule()
{
  double mag = stateMagnitude();
  int envelope = 0;
  int i;
  if (mag > envelopeBreaks[0]) {
    envelope = 1;
  }
  if (mag > envelopeBreaks[1]) {
    envelope = 2;
  }
  if (envelope != activeEnvelope) {
    activeEnvelope = envelope;
    for (i = 0; i < 4; i++) {
      safetyGain[i] = gainSchedule[envelope * 4 + i];
    }
    log_event("gain schedule switched", (double) envelope);
  }
}

/* ================================================ incident recorder ====== */

/* a small state machine that tracks incident severity over time:
 * 0 = normal, 1 = degraded, 2 = incident, 3 = recovery */
int incidentState;
long incidentEntered;
int incidentCount;

void incidentStep(int faultNow)
{
  switch (incidentState) {
    case 0:
      if (faultNow == 1) {
        incidentState = 1;
        incidentEntered = loopCount;
      }
      break;
    case 1:
      if (faultNow == 0) {
        incidentState = 0;
      } else {
        if (loopCount - incidentEntered > 50) {
          incidentState = 2;
          incidentCount = incidentCount + 1;
          log_event("incident declared", (double) incidentCount);
        }
      }
      break;
    case 2:
      if (faultNow == 0) {
        incidentState = 3;
        incidentEntered = loopCount;
      }
      break;
    case 3:
      if (faultNow == 1) {
        incidentState = 2;
      } else {
        if (loopCount - incidentEntered > 200) {
          incidentState = 0;
          log_event("incident cleared", (double) incidentCount);
        }
      }
      break;
    default:
      incidentState = 0;
      break;
  }
}

int inIncident()
{
  if (incidentState == 2) {
    return 1;
  }
  return 0;
}

/* ============================================ performance accounting ===== */

double costAccumulator;
double costWindow[16];
int costHead;

void accountPerformance(double output)
{
  int i;
  double step = 0.0;
  for (i = 0; i < plantDim; i++) {
    double e = stateEst[i] - (i == 0 ? refCurrent : 0.0);
    step = step + e * e;
  }
  step = step + 0.1 * output * output;
  costAccumulator = costAccumulator + step;
  costWindow[costHead] = step;
  costHead = (costHead + 1) % 16;
}

double recentCost()
{
  int i;
  double s = 0.0;
  for (i = 0; i < 16; i++) {
    s = s + costWindow[i];
  }
  return s / 16.0;
}


/* ============================================ actuator rate limiting ===== */

double outputRateLimit = 1.2;

double limitOutputRate(double previous, double proposed)
{
  double delta = proposed - previous;
  if (delta > outputRateLimit) {
    return previous + outputRateLimit;
  }
  if (delta < -outputRateLimit) {
    return previous - outputRateLimit;
  }
  return proposed;
}

/* smooth bumpless transfer after a controller switch */
double transferBlend;

void noteSwitch()
{
  transferBlend = 1.0;
}

double applyTransferBlend(double fresh, double held)
{
  double out;
  if (transferBlend <= 0.0) {
    return fresh;
  }
  out = transferBlend * held + (1.0 - transferBlend) * fresh;
  transferBlend = transferBlend - 0.05;
  if (transferBlend < 0.0) {
    transferBlend = 0.0;
  }
  return out;
}

/* ========================================================= main ========== */

int main()
{
  double safeControl;
  double output;
  double trim;
  double step;
  double bias;
  double cal;

  initShm();
  loadPlantDescription();
  configValid = validateConfiguration();
  initCoreState();
  initObserver();
  initWatchpoints();
  initGainSchedule();
  selfTestPassed = runSelfTest();
  refTarget = 0.0;
  refCurrent = 0.0;
  incidentState = 0;
  incidentCount = 0;
  costAccumulator = 0.0;
  costHead = 0;
  ncChildPid = spawn_noncore();

  while (loopCount < 100000) {
    /* 1. sense, validate, estimate */
    sampleSensors();
    if (validateSensors() == 0) {
      faultCount = faultCount + 1;
    }
    updateFilters();
    estimateState();
    observerCorrect();
    updateWatchpoints();
    scheduleReference();
    updateReference();

    /* 2. publish feedback, then compute the safety control — from the
       shared block, which is the rigged-feedback error */
    Lock(shmLock);
    publishFeedback();
    safeControl = computeSafeControl();
    Unlock(shmLock);

    wait_period(periodUs);

    /* 3. decide and actuate */
    Lock(shmLock);
    output = decision(safeControl);
    trackFreshness();
    Unlock(shmLock);

    output = limitOutputRate(prevOutput, output);
    modePolicy(&trim, &step);
    presencePolicy(&bias, &cal);
    output = (output + trim * step + bias) * cal;
    /*** SafeFlow Annotation assert(safe(output)) ***/
    sendControl(output);
    prevOutput = output;
    observerPredict(output);
    telemetryRecord(output);
    accountPerformance(output);
    updateGainSchedule();
    incidentStep(anyWatchpointTripped());
    if (inIncident() == 1 && loopCount % 50 == 0) {
      log_event("incident active, recent cost", recentCost());
    }

    handleOperator();

    /* 4. housekeeping */
    if (loopCount % 100 == 99) {
      superviseNonCore();
    }
    if (loopCount % 200 == 199) {
      publishTuning();
      runDiagnostics();
      if (observerHealthy() == 0) {
        log_event("observer innovation high", obsInnovationNorm);
      }
      if (anyWatchpointTripped() == 1) {
        faultCount = faultCount + 1;
      }
    }
    if (loopCount % 2000 == 1999) {
      telemetryFlush();
    }
    loopCount = loopCount + 1;
  }
  shutdownRamp(prevOutput);
  return 0;
}
