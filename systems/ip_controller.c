/* ============================================================================
 * Inverted Pendulum core controller — Simplex architecture.
 *
 * Reconstruction of the first subject system of the paper ("IP" row of
 * Table 1).  The core component balances the pendulum with a conservative
 * LQR controller and admits the output of the non-core (complex)
 * controller only after the run-time recoverability monitor approves it.
 *
 * Shared memory layout (all regions writable by the non-core subsystem):
 *   fbShm     - sensor feedback published by the core for the non-core
 *   ncCtrl    - control output published by the non-core controller
 *   ncStatus  - heartbeat / mode / tuning requests from the non-core
 *   wdInfo    - watchdog bookkeeping (non-core process id, enable flag)
 *
 * Known value-flow findings (reproduced from the paper's evaluation):
 *   - ERROR: the pid argument of kill() in superviseNonCore() is read
 *     from unmonitored non-core shared memory; a faulty non-core
 *     component can overwrite it with the core's own pid.
 *   - 7 warnings: unmonitored reads of non-core values (watchdog fields,
 *     status fields, request/mode flags, sequence freshness).
 *   - 2 false positives: critical data control-dependent on non-core
 *     request/mode flags that select between core-computed values.
 *
 * NOTE: the monitoring function checkNonCoreControl() was split out of
 * decision() so that the assume(core(...)) annotation can be applied at
 * function granularity (see systems/originals/ip_controller_orig.c).
 * ==========================================================================*/

/* ---------------------------------------------------------------- types -- */

struct Feedback {
  double track;        /* trolley position on the track [m]      */
  double angle;        /* pendulum angle from vertical [rad]     */
  double track_vel;    /* estimated trolley velocity [m/s]       */
  double angle_vel;    /* estimated angular velocity [rad/s]     */
  long   seq;          /* publication sequence number            */
  long   timestamp;    /* core clock at publication [us]         */
};
typedef struct Feedback Feedback;

struct NCControl {
  double control;      /* proposed actuator voltage [-5V, +5V]   */
  long   seq;          /* matches the feedback it was computed from */
  int    valid;        /* non-core claims the value is fresh     */
  int    pad;
};
typedef struct NCControl NCControl;

struct NCStatus {
  long   heartbeat;    /* incremented every non-core period      */
  int    mode;         /* non-core controller mode               */
  int    request;      /* ramp/limit request towards the core    */
  double gain_scale;   /* informational tuning readout           */
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;       /* pid of the non-core process            */
  int    enable;       /* watchdog armed flag                    */
  long   restart_count;
};
typedef struct WatchdogInfo WatchdogInfo;

/* ------------------------------------------------------ shared memory --- */

Feedback     *fbShm;
NCControl    *ncCtrl;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;

int shmLock;

/* ------------------------------------------------------- core state ----- */

/* sensor history ring buffers (core-private memory) */
double trackHist[16];
double angleHist[16];
int    histHead;
int    histCount;

/* calibration offsets established at startup */
double trackOffset;
double angleOffset;

/* state estimate: [track, track_vel, angle, angle_vel] */
double stateEst[4];
double prevTrack;
double prevAngle;

/* conservative LQR gain for the safety controller */
double safetyGain[4] = { -0.9458, -2.1153, -29.3567, -6.4735 };

/* actuator limits and rate limiting */
double uMax = 5.0;
double uMin = -5.0;
double rateLimit = 0.8;
double prevOutput;

/* supervision bookkeeping */
long   lastNCSeq;
int    staleCount;
int    rejectCount;
int    acceptCount;
long   loopCount;
int    ncChildPid;

/* telemetry counters */
long   telemetryTick;
int    logLevel;

/* period of the control loop in microseconds */
long   periodUs = 10000;

/* --------------------------------------------------------- externs ------ */

extern double readTrackSensor(void);
extern double readAngleSensor(void);
extern void   sendControl(double u);
extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern long   current_time(void);
extern void   log_event(char *msg, double value);
extern int    spawn_noncore(void);

/* =================================================== initialization ====== */

void initShm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  char *cursor;

  shmid = shmget(5001, sizeof(Feedback) + sizeof(NCControl)
                       + sizeof(NCStatus) + sizeof(WatchdogInfo), 438);
  shmStart = shmat(shmid, (void *) 0, 0);

  cursor = (char *) shmStart;
  fbShm = (Feedback *) cursor;
  cursor = cursor + sizeof(Feedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;

  InitCheck(shmStart, sizeof(Feedback) + sizeof(NCControl)
                      + sizeof(NCStatus) + sizeof(WatchdogInfo));
  /*** SafeFlow Annotation
       assume(shmvar(fbShm, sizeof(Feedback)))
       assume(shmvar(ncCtrl, sizeof(NCControl)))
       assume(shmvar(ncStatus, sizeof(NCStatus)))
       assume(shmvar(wdInfo, sizeof(WatchdogInfo)))
       assume(noncore(fbShm))
       assume(noncore(ncCtrl))
       assume(noncore(ncStatus))
       assume(noncore(wdInfo)) ***/
}

void initCoreState()
{
  int i;
  for (i = 0; i < 16; i++) {
    trackHist[i] = 0.0;
    angleHist[i] = 0.0;
  }
  histHead = 0;
  histCount = 0;
  trackOffset = 0.0;
  angleOffset = 0.0;
  for (i = 0; i < 4; i++) {
    stateEst[i] = 0.0;
  }
  prevTrack = 0.0;
  prevAngle = 0.0;
  prevOutput = 0.0;
  lastNCSeq = 0;
  staleCount = 0;
  rejectCount = 0;
  acceptCount = 0;
  loopCount = 0;
  telemetryTick = 0;
  logLevel = 1;
}

/* ===================================================== sensor module ===== */

/* push a raw sample pair into the history rings */
void pushSample(double track, double angle)
{
  trackHist[histHead] = track;
  angleHist[histHead] = angle;
  histHead = (histHead + 1) % 16;
  if (histCount < 16) {
    histCount = histCount + 1;
  }
}

/* mean of the most recent [n] samples of a ring buffer */
double ringMean(double *ring, int n)
{
  int i;
  int idx;
  double sum = 0.0;
  if (n > histCount) {
    n = histCount;
  }
  if (n <= 0) {
    return 0.0;
  }
  idx = histHead;
  for (i = 0; i < n; i++) {
    idx = idx - 1;
    if (idx < 0) {
      idx = 15;
    }
    sum = sum + ring[idx];
  }
  return sum / (double) n;
}

/* a small 3-point median to reject single-sample spikes */
double median3(double a, double b, double c)
{
  if (a > b) {
    double t = a;
    a = b;
    b = t;
  }
  if (b > c) {
    double t = b;
    b = c;
    c = t;
  }
  if (a > b) {
    double t = a;
    a = b;
    b = t;
  }
  return b;
}

/* read, despike and de-bias both sensors */
void readSensors(double *track, double *angle)
{
  double t0 = readTrackSensor();
  double t1 = readTrackSensor();
  double t2 = readTrackSensor();
  double a0 = readAngleSensor();
  double a1 = readAngleSensor();
  double a2 = readAngleSensor();
  double t = median3(t0, t1, t2) - trackOffset;
  double a = median3(a0, a1, a2) - angleOffset;
  pushSample(t, a);
  *track = t;
  *angle = a;
}

/* startup calibration: average a quiescent window to establish offsets */
void calibrateSensors()
{
  int i;
  double tsum = 0.0;
  double asum = 0.0;
  for (i = 0; i < 64; i++) {
    tsum = tsum + readTrackSensor();
    asum = asum + readAngleSensor();
    wait_period(1000);
  }
  trackOffset = tsum / 64.0;
  angleOffset = asum / 64.0;
  log_event("calibration complete", trackOffset);
}

/* ==================================================== state estimation === */

/* first-difference velocity estimate with exponential smoothing */
double estimateVelocity(double current, double previous, double dtSeconds,
                        double smoothed)
{
  double raw;
  if (dtSeconds <= 0.0) {
    return smoothed;
  }
  raw = (current - previous) / dtSeconds;
  return 0.7 * smoothed + 0.3 * raw;
}

void estimateState(double track, double angle)
{
  double dt = (double) periodUs / 1000000.0;
  double smoothTrack = ringMean(trackHist, 4);
  double smoothAngle = ringMean(angleHist, 4);
  stateEst[1] = estimateVelocity(smoothTrack, prevTrack, dt, stateEst[1]);
  stateEst[3] = estimateVelocity(smoothAngle, prevAngle, dt, stateEst[3]);
  stateEst[0] = smoothTrack;
  stateEst[2] = notchFilter(smoothAngle);
  prevTrack = smoothTrack;
  prevAngle = smoothAngle;
  /* keep the raw sample available for publication */
  if (track > 10.0 || track < -10.0) {
    log_event("track sensor out of physical range", track);
  }
  if (angle > 1.6 || angle < -1.6) {
    log_event("angle sensor out of physical range", angle);
  }
}

/* ================================================= safety controller ===== */

double clampOutput(double u)
{
  if (u > uMax) {
    return uMax;
  }
  if (u < uMin) {
    return uMin;
  }
  return u;
}

/* deadband suppresses actuator chatter around zero */
double deadband = 0.01;

double applyDeadband(double u)
{
  if (u < deadband && u > -deadband) {
    return 0.0;
  }
  return u;
}

/* rate limiter protects the actuator from step changes */
double limitRate(double previous, double proposed)
{
  double delta = proposed - previous;
  if (delta > rateLimit) {
    return previous + rateLimit;
  }
  if (delta < -rateLimit) {
    return previous - rateLimit;
  }
  return proposed;
}

/* the conservative LQR safety controller: u = -K x */
double computeSafeControl()
{
  double u = 0.0;
  int i;
  for (i = 0; i < 4; i++) {
    u = u - safetyGain[i] * stateEst[i];
  }
  return clampOutput(u);
}

/* ======================================================= monitor ========= */

/* Lyapunov stability envelope of the safety closed loop; coefficients of
 * the quadratic form x' P x, row-major upper triangle */
double lyapP[10] = {
  12.90,  6.45,  30.1,   4.2,
          5.80,  21.7,   3.9,
                 260.4, 28.6,
                         7.3
};
double lyapEnvelope = 9.2;

/* quadratic form over the 4-state estimate and a candidate next state */
double lyapValue(double x0, double x1, double x2, double x3)
{
  double v;
  v = lyapP[0] * x0 * x0 + lyapP[4] * x1 * x1
    + lyapP[7] * x2 * x2 + lyapP[9] * x3 * x3;
  v = v + 2.0 * (lyapP[1] * x0 * x1 + lyapP[2] * x0 * x2 + lyapP[3] * x0 * x3);
  v = v + 2.0 * (lyapP[5] * x1 * x2 + lyapP[6] * x1 * x3);
  v = v + 2.0 * (lyapP[8] * x2 * x3);
  return v;
}

/* one-step prediction of the linearized plant under input u */
void predictNext(double u, double *nt, double *ntv, double *na, double *nav)
{
  double dt = (double) periodUs / 1000000.0;
  *nt = stateEst[0] + dt * stateEst[1];
  *ntv = stateEst[1] + dt * (u - 0.981 * stateEst[2]);
  *na = stateEst[2] + dt * stateEst[3];
  *nav = stateEst[3] + dt * (21.58 * stateEst[2] - 2.0 * u);
}

/*
 * Monitoring function for the non-core control output.  The non-core
 * region ncCtrl may be dereferenced safely here: every value read from it
 * is checked for recoverability before escaping.  The feedback used by
 * the check is the core's own state estimate — NOT the shared-memory
 * feedback — per the paper's recommended structure.
 */
int checkNonCoreControl(double *ncOut)
/*** SafeFlow Annotation assume(core(ncCtrl, 0, sizeof(NCControl))) ***/
{
  double u;
  double nt;
  double ntv;
  double na;
  double nav;
  long seq;
  int valid;

  valid = ncCtrl->valid;
  if (valid != 1) {
    return 0;
  }
  seq = ncCtrl->seq;
  if (seq + 4 < lastNCSeq) {
    /* output computed from feedback that is too old */
    return 0;
  }
  u = ncCtrl->control;
  if (u != u) {
    /* NaN: non-core published garbage */
    return 0;
  }
  if (u > uMax || u < uMin) {
    return 0;
  }
  predictNext(u, &nt, &ntv, &na, &nav);
  if (lyapValue(nt, ntv, na, nav) > lyapEnvelope) {
    return 0;
  }
  *ncOut = u;
  return 1;
}

/* ======================================================= decision ======== */

/*
 * The decision module: dispatch the non-core output when the monitor
 * accepts it, fall back to the safety controller otherwise.
 */
double decision(double safeControl)
{
  double ncOut = 0.0;
  if (checkNonCoreControl(&ncOut)) {
    acceptCount = acceptCount + 1;
    return ncOut;
  }
  rejectCount = rejectCount + 1;
  return safeControl;
}

/* ================================================== publication ========== */

void publishFeedback()
{
  fbShm->track = stateEst[0];
  fbShm->track_vel = stateEst[1];
  fbShm->angle = stateEst[2];
  fbShm->angle_vel = stateEst[3];
  fbShm->timestamp = current_time();
  fbShm->seq = loopCount;
}

/* ============================================ supervision / watchdog ===== */

/*
 * Periodic supervision of the non-core process.  The watchdog pid and
 * enable flag live in non-core shared memory and are used here without
 * monitoring: SafeFlow reports the pid flowing into kill() as an error
 * dependency — a faulty non-core component overwriting wdInfo->nc_pid
 * with the core's pid would make the core kill itself.
 */
void superviseNonCore()
{
  int armed = wdInfo->enable;
  if (armed == 1) {
    long hb = ncStatus->heartbeat;
    if (hb == telemetryTick) {
      /* no heartbeat progress since the last check: restart the process */
      int pid = wdInfo->nc_pid;
      kill(pid, 9);
      wdInfo->restart_count = loopCount;
      log_event("non-core process restarted", (double) pid);
    }
    telemetryTick = hb;
  }
}

/* track the freshness of the non-core control output for diagnostics */
void trackFreshness()
{
  long seq = ncCtrl->seq;
  if (seq == lastNCSeq) {
    staleCount = staleCount + 1;
  } else {
    staleCount = 0;
  }
  lastNCSeq = seq;
  if (staleCount == 100) {
    log_event("non-core output stale for 100 periods", (double) staleCount);
  }
}

/* =========================================== telemetry and logging ======= */

void logStatus()
{
  if (logLevel >= 1) {
    double gs = ncStatus->gain_scale;
    log_event("nc gain scale", gs);
    log_event("accepted", (double) acceptCount);
    log_event("rejected", (double) rejectCount);
    log_event("loop", (double) loopCount);
  }
}

/* ================================================== mode handling ======== */

/*
 * The non-core subsystem can request smoother hand-over: when request is
 * set, the dispatched output is additionally rate limited.  Both branch
 * results are computed from core values; only the selection is driven by
 * the non-core request flag, which SafeFlow reports as a (control-only)
 * dependency of the critical output — a candidate false positive that
 * needs value-flow-graph review (paper §3.4.1).
 */
double applyHandOverPolicy(double u)
{
  int req = ncStatus->request;
  double out = u;
  if (req == 1) {
    out = limitRate(prevOutput, u);
  }
  return out;
}

/*
 * The non-core mode flag can ask the core to signal the non-core process
 * to reload its configuration.  The pid used here is the one the core
 * obtained when it spawned the process (core data), so only the decision
 * to signal is non-core controlled: the second candidate false positive.
 */
void handleReloadRequest()
{
  int m = ncStatus->mode;
  if (m == 3) {
    kill(ncChildPid, 10);
    log_event("asked non-core to reload configuration", (double) m);
  }
}


/* ================================================ track end-stop guard === */

/* software end-stops: the physical track is 2 m; the guard overrides any
 * output that keeps pushing the trolley into an end-stop */
double endStopMargin = 0.15;
int    endStopLatch;

int nearLeftStop()
{
  if (stateEst[0] < -1.0 + endStopMargin) {
    return 1;
  }
  return 0;
}

int nearRightStop()
{
  if (stateEst[0] > 1.0 - endStopMargin) {
    return 1;
  }
  return 0;
}

/* hysteresis: once latched, the guard stays active until the trolley is
 * back in the central third of the track */
double applyEndStopGuard(double u)
{
  if (endStopLatch == 1) {
    if (stateEst[0] > -0.33 && stateEst[0] < 0.33) {
      endStopLatch = 0;
    }
  }
  if (nearLeftStop() == 1 && u < 0.0) {
    endStopLatch = 1;
    return 0.0;
  }
  if (nearRightStop() == 1 && u > 0.0) {
    endStopLatch = 1;
    return 0.0;
  }
  return u;
}

/* =============================================== notch filter module ===== */

/* second-order biquad notch on the angle channel suppresses the pole's
 * structural resonance; direct form I with core-private state */
double notchB0 = 0.977987;
double notchB1 = -1.868613;
double notchB2 = 0.977987;
double notchA1 = -1.815139;
double notchA2 = 0.902500;
double notchX1;
double notchX2;
double notchY1;
double notchY2;

void resetNotch()
{
  notchX1 = 0.0;
  notchX2 = 0.0;
  notchY1 = 0.0;
  notchY2 = 0.0;
}

double notchFilter(double sample)
{
  double y = notchB0 * sample + notchB1 * notchX1 + notchB2 * notchX2
           - notchA1 * notchY1 - notchA2 * notchY2;
  notchX2 = notchX1;
  notchX1 = sample;
  notchY2 = notchY1;
  notchY1 = y;
  return y;
}

/* ================================================ telemetry ring ========= */

struct TelemetryRecord {
  long   tick;
  double track;
  double angle;
  double output;
  int    used_complex;
};
typedef struct TelemetryRecord TelemetryRecord;

TelemetryRecord telemetryRing[64];
int telemetryHead;
int telemetryDropped;

void telemetryRecord(double output, int usedComplex)
{
  TelemetryRecord *slot = &telemetryRing[telemetryHead];
  slot->tick = loopCount;
  slot->track = stateEst[0];
  slot->angle = stateEst[2];
  slot->output = output;
  slot->used_complex = usedComplex;
  telemetryHead = (telemetryHead + 1) % 64;
}

/* flush a window of the ring into the event log (rate limited) */
void telemetryFlush()
{
  int i;
  int idx = telemetryHead;
  for (i = 0; i < 8; i++) {
    idx = idx - 1;
    if (idx < 0) {
      idx = 63;
    }
    log_event("telemetry angle", telemetryRing[idx].angle);
  }
}

/* ================================================ startup self test ====== */

/* verify that both sensors respond and that their noise floor is sane
 * before the control loop may start; a failing self test keeps the
 * system on the safety controller permanently */
int selfTestPassed;

double sensorNoiseEstimate(int which)
{
  int i;
  double sum = 0.0;
  double sumsq = 0.0;
  double v;
  for (i = 0; i < 32; i++) {
    if (which == 0) {
      v = readTrackSensor();
    } else {
      v = readAngleSensor();
    }
    sum = sum + v;
    sumsq = sumsq + v * v;
    wait_period(500);
  }
  return (sumsq - sum * sum / 32.0) / 31.0;
}

int runSelfTest()
{
  double trackVar = sensorNoiseEstimate(0);
  double angleVar = sensorNoiseEstimate(1);
  if (trackVar < 0.0 || trackVar > 0.01) {
    log_event("track sensor noise out of spec", trackVar);
    return 0;
  }
  if (angleVar < 0.0 || angleVar > 0.005) {
    log_event("angle sensor noise out of spec", angleVar);
    return 0;
  }
  /* exercise the actuator with a tiny symmetric pulse */
  sendControl(0.05);
  wait_period(2000);
  sendControl(-0.05);
  wait_period(2000);
  sendControl(0.0);
  log_event("self test passed", trackVar + angleVar);
  return 1;
}

/* ================================================ shutdown sequence ====== */

/* ramp the actuator to zero instead of cutting it: an abrupt zero with
 * the pendulum deflected would slam the trolley */
void shutdownRamp(double fromOutput)
{
  double u = fromOutput;
  int i;
  for (i = 0; i < 20; i++) {
    u = u * 0.75;
    sendControl(u);
    wait_period(periodUs);
  }
  sendControl(0.0);
  log_event("shutdown ramp complete", 0.0);
}

/* ================================================ fault accounting ======= */

int faultCounts[8];

void recordFault(int kind)
{
  if (kind >= 0 && kind < 8) {
    faultCounts[kind] = faultCounts[kind] + 1;
  }
}

int totalFaults()
{
  int i;
  int total = 0;
  for (i = 0; i < 8; i++) {
    total = total + faultCounts[i];
  }
  return total;
}

void reportFaults()
{
  int i;
  for (i = 0; i < 8; i++) {
    if (faultCounts[i] > 0) {
      log_event("fault class count", (double) faultCounts[i]);
    }
  }
}


/* ============================================ actuator health module ===== */

/* the actuator command/response loop is checked by comparing the
 * commanded voltage with the measured motor current profile */
double actuatorGainNominal = 0.42;
double actuatorHealth = 1.0;
double actuatorResidualAccum;
long   actuatorSamples;

extern double readMotorCurrent(void);

void actuatorHealthSample(double commanded)
{
  double current = readMotorCurrent();
  double expected = commanded * actuatorGainNominal;
  double residual = current - expected;
  if (residual < 0.0) {
    residual = -residual;
  }
  actuatorResidualAccum = actuatorResidualAccum + residual;
  actuatorSamples = actuatorSamples + 1;
}

void actuatorHealthUpdate()
{
  double mean;
  if (actuatorSamples < 100) {
    return;
  }
  mean = actuatorResidualAccum / (double) actuatorSamples;
  if (mean > 0.2) {
    actuatorHealth = actuatorHealth * 0.9;
    recordFault(2);
    log_event("actuator residual high", mean);
  } else {
    actuatorHealth = actuatorHealth * 0.99 + 0.01;
  }
  actuatorResidualAccum = 0.0;
  actuatorSamples = 0;
}

int actuatorDegraded()
{
  if (actuatorHealth < 0.5) {
    return 1;
  }
  return 0;
}

/* ============================================ derivative sanity check ==== */

/* cross-check the estimated velocities against finite differences of the
 * raw rings: a large discrepancy indicates estimator divergence */
double lastRawTrack;
double lastRawAngle;

int velocityConsistent()
{
  double dt = (double) periodUs / 1000000.0;
  double rawTrackVel;
  double rawAngleVel;
  double dTrack;
  double dAngle;
  if (dt <= 0.0) {
    return 1;
  }
  rawTrackVel = (ringMean(trackHist, 2) - lastRawTrack) / dt;
  rawAngleVel = (ringMean(angleHist, 2) - lastRawAngle) / dt;
  lastRawTrack = ringMean(trackHist, 2);
  lastRawAngle = ringMean(angleHist, 2);
  dTrack = stateEst[1] - rawTrackVel;
  dAngle = stateEst[3] - rawAngleVel;
  if (dTrack < 0.0) {
    dTrack = -dTrack;
  }
  if (dAngle < 0.0) {
    dAngle = -dAngle;
  }
  if (dTrack > 5.0 || dAngle > 8.0) {
    recordFault(3);
    return 0;
  }
  return 1;
}

/* ========================================================= main ========== */

int main()
{
  double track;
  double angle;
  double safeControl;
  double output;

  initShm();
  initCoreState();
  resetNotch();
  calibrateSensors();
  selfTestPassed = runSelfTest();
  if (selfTestPassed == 0) {
    recordFault(0);
  }
  ncChildPid = spawn_noncore();

  while (loopCount < 100000) {
    /* 1. sense and estimate */
    readSensors(&track, &angle);
    estimateState(track, angle);

    /* 2. publish the feedback for the non-core controller */
    Lock(shmLock);
    publishFeedback();
    Unlock(shmLock);

    /* 3. core computes its own safe control while non-core runs */
    safeControl = computeSafeControl();
    wait_period(periodUs);

    /* 4. decide and actuate */
    Lock(shmLock);
    output = decision(safeControl);
    trackFreshness();
    Unlock(shmLock);

    output = applyHandOverPolicy(output);
    output = applyEndStopGuard(output);
    output = applyDeadband(output);
    /*** SafeFlow Annotation assert(safe(output)) ***/
    sendControl(output);
    prevOutput = output;
    telemetryRecord(output, selfTestPassed);

    /* 5. housekeeping */
    actuatorHealthSample(output);
    if (loopCount % 100 == 99) {
      actuatorHealthUpdate();
      if (actuatorDegraded() == 1) {
        log_event("actuator degraded, conservative mode", actuatorHealth);
      }
      if (velocityConsistent() == 0) {
        log_event("estimator cross-check failed", stateEst[1]);
      }
      superviseNonCore();
      handleReloadRequest();
    }
    if (loopCount % 500 == 499) {
      logStatus();
      reportFaults();
    }
    if (loopCount % 2000 == 1999) {
      telemetryFlush();
    }
    if (totalFaults() > 100) {
      log_event("too many faults, stopping", (double) totalFaults());
      break;
    }
    loopCount = loopCount + 1;
  }
  shutdownRamp(prevOutput);
  return 0;
}
