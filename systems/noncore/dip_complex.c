/* ============================================================================
 * Double Inverted Pendulum NON-CORE subsystem: energy-shaping complex
 * controller, online tuning optimizer and calibration setup tool.
 * ==========================================================================*/

struct DIPFeedback {
  double cart;
  double cart_vel;
  double angle1;
  double angle1_vel;
  double angle2;
  double angle2_vel;
  long   seq;
  long   timestamp;
};
typedef struct DIPFeedback DIPFeedback;

struct NCControl {
  double control;
  long   seq;
  int    valid;
  int    pad;
};
typedef struct NCControl NCControl;

struct NCModes {
  int    dual_mode;
  int    swing_request;
  int    hold_request;
  int    pad;
};
typedef struct NCModes NCModes;

struct NCStatus {
  long   heartbeat;
  int    state;
  int    pad;
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;
  int    enable;
  long   restart_epoch;
};
typedef struct WatchdogInfo WatchdogInfo;

struct TuneBlock {
  double damping;
  double stiffness;
  long   epoch;
};
typedef struct TuneBlock TuneBlock;

struct CalBlock {
  double scale1;
  double scale2;
  double drift;
  long   epoch;
};
typedef struct CalBlock CalBlock;

DIPFeedback  *fbShm;
NCControl    *ncCtrl;
NCModes      *ncModes;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;
TuneBlock    *tuneShm;
CalBlock     *calShm;

int shmLock;

double perfGain[6] = { 7.07, 9.41, 201.3, 35.2, -61.0, -12.4 };
long   localTick;
double tuneCandidate;
double bestCostSeen;
double currentWindowCost;
int    windowSamples;

extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern void   gui_draw_text(int row, int col, char *text);
extern void   gui_draw_value(int row, int col, double value);
extern void   gui_refresh(void);
extern int    getownpid(void);
extern double calMeasureScale(int channel);
extern double calMeasureDrift(void);

void attachShm()
{
  int shmid;
  void *base;
  char *cursor;
  long total;
  total = sizeof(DIPFeedback) + sizeof(NCControl) + sizeof(NCModes)
        + sizeof(NCStatus) + sizeof(WatchdogInfo) + sizeof(TuneBlock)
        + sizeof(CalBlock);
  shmid = shmget(5003, total, 438);
  base = shmat(shmid, (void *) 0, 0);
  cursor = (char *) base;
  fbShm = (DIPFeedback *) cursor;
  cursor = cursor + sizeof(DIPFeedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncModes = (NCModes *) cursor;
  cursor = cursor + sizeof(NCModes);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;
  cursor = cursor + sizeof(WatchdogInfo);
  tuneShm = (TuneBlock *) cursor;
  cursor = cursor + sizeof(TuneBlock);
  calShm = (CalBlock *) cursor;
}

/* calibration setup pass: run once at attach time */
void runCalibrationTool()
{
  calShm->scale1 = calMeasureScale(1);
  calShm->scale2 = calMeasureScale(2);
  calShm->drift = calMeasureDrift();
  calShm->epoch = calShm->epoch + 1;
}

void registerWithWatchdog()
{
  wdInfo->nc_pid = getownpid();
  wdInfo->enable = 1;
}

double computeComplexControl()
{
  double u = 0.0;
  u = u - perfGain[0] * fbShm->cart;
  u = u - perfGain[1] * fbShm->cart_vel;
  u = u - perfGain[2] * fbShm->angle1;
  u = u - perfGain[3] * fbShm->angle1_vel;
  u = u - perfGain[4] * fbShm->angle2;
  u = u - perfGain[5] * fbShm->angle2_vel;
  if (u > 5.0) {
    u = 5.0;
  }
  if (u < -5.0) {
    u = -5.0;
  }
  return u;
}

/* hill-climbing optimizer for the damping suggestion published to the
 * core: evaluates windows of tracking cost and keeps improvements */
void optimizerStep()
{
  double sample = fbShm->angle1 * fbShm->angle1
                + fbShm->angle2 * fbShm->angle2
                + 0.2 * fbShm->cart * fbShm->cart;
  currentWindowCost = currentWindowCost + sample;
  windowSamples = windowSamples + 1;
  if (windowSamples >= 500) {
    if (currentWindowCost < bestCostSeen) {
      bestCostSeen = currentWindowCost;
      tuneShm->damping = tuneCandidate;
      tuneShm->epoch = tuneShm->epoch + 1;
    }
    /* propose the next candidate around the best one */
    if ((localTick / 500) % 2 == 0) {
      tuneCandidate = tuneShm->damping + 0.01;
    } else {
      tuneCandidate = tuneShm->damping - 0.005;
    }
    tuneShm->stiffness = tuneCandidate * 4.0;
    currentWindowCost = 0.0;
    windowSamples = 0;
  }
}

void publishControl(double u)
{
  ncCtrl->control = u;
  ncCtrl->seq = fbShm->seq;
  ncCtrl->valid = 1;
}

void publishStatus()
{
  ncStatus->heartbeat = ncStatus->heartbeat + 1;
  ncStatus->state = 1;
}

void publishModeRequests()
{
  double sway = fbShm->angle1 * fbShm->angle1 + fbShm->angle2 * fbShm->angle2;
  if (sway > 0.02) {
    ncModes->dual_mode = 1;
  } else {
    ncModes->dual_mode = 0;
  }
  if (localTick % 20000 == 19999) {
    ncModes->swing_request = 1;
  } else {
    ncModes->swing_request = 0;
  }
}

void drawDashboard()
{
  gui_draw_text(0, 0, "DOUBLE IP - COMPLEX CONTROLLER");
  gui_draw_text(1, 0, "cart:");
  gui_draw_value(1, 8, fbShm->cart);
  gui_draw_text(2, 0, "angle1:");
  gui_draw_value(2, 8, fbShm->angle1);
  gui_draw_text(3, 0, "angle2:");
  gui_draw_value(3, 8, fbShm->angle2);
  gui_draw_text(4, 0, "control:");
  gui_draw_value(4, 10, ncCtrl->control);
  gui_draw_text(5, 0, "damping:");
  gui_draw_value(5, 10, tuneShm->damping);
  gui_refresh();
}

int main()
{
  attachShm();
  runCalibrationTool();
  registerWithWatchdog();
  bestCostSeen = 1000000.0;
  tuneCandidate = 0.0;
  while (localTick < 2000000) {
    double u;
    Lock(shmLock);
    u = computeComplexControl();
    publishControl(u);
    publishStatus();
    publishModeRequests();
    optimizerStep();
    Unlock(shmLock);
    if (localTick % 80 == 79) {
      drawDashboard();
    }
    wait_period(5000);
    localTick = localTick + 1;
  }
  return 0;
}
