/* ============================================================================
 * Generic Simplex NON-CORE subsystem: model-predictive-flavoured complex
 * controller, configuration publisher and operator GUI.
 *
 * Untrusted by construction; the core's monitor decides whether any of
 * its outputs reach the actuator.
 * ==========================================================================*/

struct SysConfig {
  int    use_complex;
  int    mode;
  int    ui_enabled;
  int    pad;
  long   config_epoch;
};
typedef struct SysConfig SysConfig;

struct Feedback {
  double y[4];
  long   seq;
  long   timestamp;
};
typedef struct Feedback Feedback;

struct NCControl {
  double control;
  long   seq;
  int    valid;
  int    pad;
};
typedef struct NCControl NCControl;

struct NCStatus {
  long   heartbeat;
  int    state;
  int    pad;
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;
  int    armed;
};
typedef struct WatchdogInfo WatchdogInfo;

struct UICommand {
  int    cmd;
  int    arg;
  long   seq;
};
typedef struct UICommand UICommand;

struct TuneReadout {
  double gains[4];
  double envelope;
  long   epoch;
};
typedef struct TuneReadout TuneReadout;

SysConfig    *cfgShm;
Feedback     *fbShm;
NCControl    *ncCtrl;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;
UICommand    *uiShm;
TuneReadout  *tuneShm;

int shmLock;

/* local model of the plant for the one-step lookahead */
double modelA[16];
double modelB[4];
int    modelDim;

double horizonWeights[4] = { 1.0, 0.8, 0.6, 0.4 };
double candidateGrid[9] = { -5.0, -3.0, -1.5, -0.5, 0.0, 0.5, 1.5, 3.0, 5.0 };
long   localTick;

extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern void   gui_draw_text(int row, int col, char *text);
extern void   gui_draw_value(int row, int col, double value);
extern void   gui_refresh(void);
extern int    gui_poll_key(void);
extern int    getownpid(void);
extern double ncReadModelValue(int index);

void attachShm()
{
  int shmid;
  void *base;
  char *cursor;
  long total;
  total = sizeof(SysConfig) + sizeof(Feedback) + sizeof(NCControl)
        + sizeof(NCStatus) + sizeof(WatchdogInfo) + sizeof(UICommand)
        + sizeof(TuneReadout);
  shmid = shmget(5002, total, 438);
  base = shmat(shmid, (void *) 0, 0);
  cursor = (char *) base;
  cfgShm = (SysConfig *) cursor;
  cursor = cursor + sizeof(SysConfig);
  fbShm = (Feedback *) cursor;
  cursor = cursor + sizeof(Feedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;
  cursor = cursor + sizeof(WatchdogInfo);
  uiShm = (UICommand *) cursor;
  cursor = cursor + sizeof(UICommand);
  tuneShm = (TuneReadout *) cursor;
}

void publishConfiguration()
{
  cfgShm->use_complex = 1;
  cfgShm->mode = 1;
  cfgShm->ui_enabled = 1;
  cfgShm->config_epoch = cfgShm->config_epoch + 1;
}

void loadLocalModel()
{
  int i;
  modelDim = (int) ncReadModelValue(0);
  if (modelDim < 1) {
    modelDim = 1;
  }
  if (modelDim > 4) {
    modelDim = 4;
  }
  for (i = 0; i < 16; i++) {
    modelA[i] = ncReadModelValue(1 + i);
  }
  for (i = 0; i < 4; i++) {
    modelB[i] = ncReadModelValue(17 + i);
  }
}

/* cost of applying u for one step from the published feedback */
double lookaheadCost(double u)
{
  int i;
  int j;
  double next[4];
  double cost = 0.0;
  double dt = 0.01;
  for (i = 0; i < modelDim; i++) {
    double acc = 0.0;
    for (j = 0; j < modelDim; j++) {
      acc = acc + modelA[i * 4 + j] * fbShm->y[j];
    }
    next[i] = fbShm->y[i] + dt * (acc + modelB[i] * u);
  }
  for (i = 0; i < modelDim; i++) {
    cost = cost + horizonWeights[i] * next[i] * next[i];
  }
  cost = cost + 0.05 * u * u;
  return cost;
}

/* grid search over candidate inputs: a poor man's one-step MPC */
double computeComplexControl()
{
  int k;
  double best = candidateGrid[0];
  double bestCost = lookaheadCost(candidateGrid[0]);
  for (k = 1; k < 9; k++) {
    double c = lookaheadCost(candidateGrid[k]);
    if (c < bestCost) {
      bestCost = c;
      best = candidateGrid[k];
    }
  }
  return best;
}

void publishControl(double u)
{
  ncCtrl->control = u;
  ncCtrl->seq = fbShm->seq;
  ncCtrl->valid = 1;
}

void publishStatus()
{
  ncStatus->heartbeat = ncStatus->heartbeat + 1;
  ncStatus->state = 2;
}

void registerWithWatchdog()
{
  wdInfo->nc_pid = getownpid();
  wdInfo->armed = 1;
}

/* ----------------------------- operator GUI ------------------------------ */

void relayOperatorKeys()
{
  int key = gui_poll_key();
  if (key == 106) {          /* 'j' : jog */
    uiShm->cmd = 1;
    uiShm->seq = uiShm->seq + 1;
  }
  if (key == 114) {          /* 'r' : reload */
    uiShm->cmd = 2;
    uiShm->seq = uiShm->seq + 1;
  }
  if (key == 0) {
    uiShm->cmd = 0;
  }
}

void drawDashboard()
{
  int i;
  gui_draw_text(0, 0, "GENERIC SIMPLEX - COMPLEX CONTROLLER");
  for (i = 0; i < modelDim; i++) {
    gui_draw_text(1 + i, 0, "y:");
    gui_draw_value(1 + i, 4, fbShm->y[i]);
  }
  gui_draw_text(6, 0, "control:");
  gui_draw_value(6, 10, ncCtrl->control);
  gui_draw_text(7, 0, "core gains:");
  for (i = 0; i < 4; i++) {
    gui_draw_value(8, i * 10, tuneShm->gains[i]);
  }
  gui_draw_text(9, 0, "envelope:");
  gui_draw_value(9, 10, tuneShm->envelope);
  gui_refresh();
}

int main()
{
  attachShm();
  loadLocalModel();
  publishConfiguration();
  registerWithWatchdog();
  while (localTick < 1000000) {
    double u;
    Lock(shmLock);
    u = computeComplexControl();
    publishControl(u);
    publishStatus();
    Unlock(shmLock);
    relayOperatorKeys();
    if (localTick % 40 == 39) {
      drawDashboard();
    }
    wait_period(10000);
    localTick = localTick + 1;
  }
  return 0;
}
