/* ============================================================================
 * Inverted Pendulum NON-CORE subsystem: complex controller + status GUI.
 *
 * This component is deliberately outside the trusted computing base: it
 * may crash, publish garbage, or scribble over any shared-memory cell.
 * The core component must remain safe regardless (which is exactly what
 * SafeFlow verifies on the core side).
 *
 * The complex controller implements a higher-performance state feedback
 * with a feedforward reference tracker and an adaptive gain-scale knob
 * driven by recent tracking cost.
 * ==========================================================================*/

struct Feedback {
  double track;
  double angle;
  double track_vel;
  double angle_vel;
  long   seq;
  long   timestamp;
};
typedef struct Feedback Feedback;

struct NCControl {
  double control;
  long   seq;
  int    valid;
  int    pad;
};
typedef struct NCControl NCControl;

struct NCStatus {
  long   heartbeat;
  int    mode;
  int    request;
  double gain_scale;
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;
  int    enable;
  long   restart_count;
};
typedef struct WatchdogInfo WatchdogInfo;

Feedback     *fbShm;
NCControl    *ncCtrl;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;

int shmLock;

/* aggressive nominal gain, tuned for tracking performance */
double perfGain[4] = { 8.9443, 7.8153, 52.7046, 10.8826 };
double gainScale = 1.0;
double refTrack;
long   localTick;
double costWindow[32];
int    costHead;

extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern long   current_time(void);
extern void   gui_draw_text(int row, int col, char *text);
extern void   gui_draw_value(int row, int col, double value);
extern void   gui_refresh(void);
extern int    getownpid(void);

void attachShm()
{
  int shmid;
  void *base;
  char *cursor;
  shmid = shmget(5001, sizeof(Feedback) + sizeof(NCControl)
                       + sizeof(NCStatus) + sizeof(WatchdogInfo), 438);
  base = shmat(shmid, (void *) 0, 0);
  cursor = (char *) base;
  fbShm = (Feedback *) cursor;
  cursor = cursor + sizeof(Feedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;
}

void registerWithWatchdog()
{
  wdInfo->nc_pid = getownpid();
  wdInfo->enable = 1;
}

/* reference: slow sinusoid-ish sweep approximated by a triangle wave */
double referencePosition()
{
  long phase = localTick % 8000;
  double x;
  if (phase < 4000) {
    x = -0.3 + 0.00015 * (double) phase;
  } else {
    x = 0.3 - 0.00015 * (double) (phase - 4000);
  }
  return x;
}

/* adaptive scale: grow when tracking well, shrink after bad windows */
void adaptGainScale(double cost)
{
  double mean = 0.0;
  int i;
  costWindow[costHead] = cost;
  costHead = (costHead + 1) % 32;
  for (i = 0; i < 32; i++) {
    mean = mean + costWindow[i];
  }
  mean = mean / 32.0;
  if (mean < 0.02 && gainScale < 1.4) {
    gainScale = gainScale + 0.001;
  }
  if (mean > 0.2 && gainScale > 0.6) {
    gainScale = gainScale - 0.01;
  }
}

double computeComplexControl()
{
  double err0 = fbShm->track - referencePosition();
  double u = 0.0;
  u = u - perfGain[0] * err0;
  u = u - perfGain[1] * fbShm->track_vel;
  u = u - perfGain[2] * fbShm->angle;
  u = u - perfGain[3] * fbShm->angle_vel;
  u = u * gainScale;
  if (u > 5.0) {
    u = 5.0;
  }
  if (u < -5.0) {
    u = -5.0;
  }
  adaptGainScale(err0 * err0 + fbShm->angle * fbShm->angle);
  return u;
}

void publishControl(double u)
{
  ncCtrl->control = u;
  ncCtrl->seq = fbShm->seq;
  ncCtrl->valid = 1;
}

void publishStatus()
{
  ncStatus->heartbeat = ncStatus->heartbeat + 1;
  ncStatus->mode = 1;
  ncStatus->gain_scale = gainScale;
  if (localTick % 4000 == 3999) {
    ncStatus->request = 1;
  } else {
    ncStatus->request = 0;
  }
}

/* ----------------------------- status GUI -------------------------------- */

void drawDashboard()
{
  gui_draw_text(0, 0, "IP COMPLEX CONTROLLER");
  gui_draw_text(1, 0, "track:");
  gui_draw_value(1, 10, fbShm->track);
  gui_draw_text(2, 0, "angle:");
  gui_draw_value(2, 10, fbShm->angle);
  gui_draw_text(3, 0, "control:");
  gui_draw_value(3, 10, ncCtrl->control);
  gui_draw_text(4, 0, "gain scale:");
  gui_draw_value(4, 12, gainScale);
  gui_draw_text(5, 0, "heartbeat:");
  gui_draw_value(5, 12, (double) ncStatus->heartbeat);
  gui_refresh();
}

void drawTrackBar()
{
  int col = (int) ((fbShm->track + 1.0) * 20.0);
  int i;
  if (col < 0) {
    col = 0;
  }
  if (col > 40) {
    col = 40;
  }
  for (i = 0; i < 41; i++) {
    if (i == col) {
      gui_draw_text(7, i, "#");
    } else {
      gui_draw_text(7, i, "-");
    }
  }
}

int main()
{
  int i;
  attachShm();
  registerWithWatchdog();
  for (i = 0; i < 32; i++) {
    costWindow[i] = 0.0;
  }
  while (localTick < 1000000) {
    double u;
    Lock(shmLock);
    u = computeComplexControl();
    publishControl(u);
    publishStatus();
    Unlock(shmLock);
    if (localTick % 50 == 49) {
      drawDashboard();
      drawTrackBar();
    }
    wait_period(10000);
    localTick = localTick + 1;
  }
  return 0;
}
