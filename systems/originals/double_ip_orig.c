/* ============================================================================
 * Double Inverted Pendulum core controller — Simplex architecture.
 *
 * Reconstruction of the third subject system of the paper ("Double IP"
 * row of Table 1): two poles of different lengths on one trolley, based
 * on the IP controller code but extended with additional control modes
 * (balance / transition / hold) and a calibration interface.
 *
 * Shared memory regions (all writable by the non-core subsystem):
 *   fbShm    - published feedback (6 states: cart + two poles)
 *   ncCtrl   - non-core control output
 *   ncModes  - mode requests from the non-core subsystem
 *   ncStatus - non-core heartbeat/status
 *   wdInfo   - watchdog block (non-core pid, arm flag)
 *   tuneShm  - tuning suggestions from the non-core optimizer
 *   calShm   - calibration block published by the non-core setup tool
 *
 * Findings reproduced from the paper's evaluation:
 *   - ERROR 1: applyDamping() reads a damping coefficient from the
 *     unmonitored non-core tuning block "knowing" it only nudges the
 *     output slightly; the analysis discovers that the value does
 *     propagate into the critical actuator output (the paper: "accessing
 *     an unmonitored non-core value assuming that this value does not
 *     propagate to the critical data ... the assumption is invalid").
 *   - ERROR 2: the watchdog kill() pid comes from unmonitored shared
 *     memory (present in all three systems).
 *   - 8 warnings for the unmonitored non-core reads.
 *   - 2 false positives: mode-selection control dependence.
 *
 * NOTE: checkNonCoreControl() was split out of decision() to make the
 * function-granularity annotation possible (same source change as in the
 * IP system; see systems/originals/double_ip_orig.c).
 * ==========================================================================*/

/* ---------------------------------------------------------------- types -- */

struct DIPFeedback {
  double cart;         /* trolley position [m]                */
  double cart_vel;
  double angle1;       /* long pole angle [rad]               */
  double angle1_vel;
  double angle2;       /* short pole angle [rad]              */
  double angle2_vel;
  long   seq;
  long   timestamp;
};
typedef struct DIPFeedback DIPFeedback;

struct NCControl {
  double control;
  long   seq;
  int    valid;
  int    pad;
};
typedef struct NCControl NCControl;

struct NCModes {
  int    dual_mode;      /* request blended two-pole weighting  */
  int    swing_request;  /* request a swing-up assist restart   */
  int    hold_request;
  int    pad;
};
typedef struct NCModes NCModes;

struct NCStatus {
  long   heartbeat;
  int    state;
  int    pad;
};
typedef struct NCStatus NCStatus;

struct WatchdogInfo {
  int    nc_pid;
  int    enable;
  long   restart_epoch;
};
typedef struct WatchdogInfo WatchdogInfo;

struct TuneBlock {
  double damping;        /* suggested extra derivative gain     */
  double stiffness;      /* suggested extra proportional gain   */
  long   epoch;
};
typedef struct TuneBlock TuneBlock;

struct CalBlock {
  double scale1;         /* pole-1 angle sensor scale           */
  double scale2;         /* pole-2 angle sensor scale           */
  double drift;          /* measured drift estimate             */
  long   epoch;
};
typedef struct CalBlock CalBlock;

/* ------------------------------------------------------ shared memory --- */

DIPFeedback  *fbShm;
NCControl    *ncCtrl;
NCModes      *ncModes;
NCStatus     *ncStatus;
WatchdogInfo *wdInfo;
TuneBlock    *tuneShm;
CalBlock     *calShm;

int shmLock;

/* ------------------------------------------------------- core state ----- */

/* state estimate: [cart, cart_vel, a1, a1_vel, a2, a2_vel] */
double stateEst[6];
double prevSample[3];   /* previous cart/angle1/angle2 for differencing */

/* sensor rings, one per measured channel */
double cartHist[8];
double angle1Hist[8];
double angle2Hist[8];
int    ringHead;
int    ringCount;

/* the safety controller: conservative LQR for the 6-state plant */
double safetyGain[6] = { 0.9450, 2.5296, 176.6601, 43.9389, -159.8565, -27.8008 };

/* blending weights for the two poles in transition mode */
double blendBalance = 1.0;
double blendTransition = 0.65;

/* Lyapunov quadratic form (upper triangle, 6x6 row-major by index) */
double lyapP[36] = {
  14.2,  7.1,  52.0,  9.0, -12.1, -2.8,
   7.1,  6.3,  41.2,  7.7, -10.0, -2.2,
  52.0, 41.2, 611.0, 96.1, -141.5, -29.3,
   9.0,  7.7,  96.1, 17.2, -24.0, -5.1,
 -12.1, -10.0, -141.5, -24.0, 43.0,  8.4,
  -2.8,  -2.2, -29.3,  -5.1,  8.4,  2.0
};
double lyapEnvelope = 6.0;

/* calibration gains established through the monitored calibration path */
double calGain1 = 1.0;
double calGain2 = 1.0;

/* actuation */
double uMax = 5.0;
double uMin = -5.0;
double prevOutput;

/* mode machine: 0 = balance, 1 = transition, 2 = hold */
int    coreMode;
long   modeEntryTick;

/* bookkeeping */
long   loopCount;
long   lastNCSeq;
int    staleCount;
int    acceptCount;
int    rejectCount;
int    ncChildPid;
long   watchTick;
long   periodUs = 5000;

/* --------------------------------------------------------- externs ------ */

extern double readCartSensor(void);
extern double readAngle1Sensor(void);
extern double readAngle2Sensor(void);
extern void   sendControl(double u);
extern void   Lock(int lockid);
extern void   Unlock(int lockid);
extern void   wait_period(long usecs);
extern long   current_time(void);
extern void   log_event(char *msg, double value);
extern int    spawn_noncore(void);

/* =================================================== initialization ====== */

void initShm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  char *cursor;
  long total;

  total = sizeof(DIPFeedback) + sizeof(NCControl) + sizeof(NCModes)
        + sizeof(NCStatus) + sizeof(WatchdogInfo) + sizeof(TuneBlock)
        + sizeof(CalBlock);
  shmid = shmget(5003, total, 438);
  shmStart = shmat(shmid, (void *) 0, 0);

  cursor = (char *) shmStart;
  fbShm = (DIPFeedback *) cursor;
  cursor = cursor + sizeof(DIPFeedback);
  ncCtrl = (NCControl *) cursor;
  cursor = cursor + sizeof(NCControl);
  ncModes = (NCModes *) cursor;
  cursor = cursor + sizeof(NCModes);
  ncStatus = (NCStatus *) cursor;
  cursor = cursor + sizeof(NCStatus);
  wdInfo = (WatchdogInfo *) cursor;
  cursor = cursor + sizeof(WatchdogInfo);
  tuneShm = (TuneBlock *) cursor;
  cursor = cursor + sizeof(TuneBlock);
  calShm = (CalBlock *) cursor;

  InitCheck(shmStart, total);
  /*** SafeFlow Annotation
       assume(shmvar(fbShm, sizeof(DIPFeedback)))
       assume(shmvar(ncCtrl, sizeof(NCControl)))
       assume(shmvar(ncModes, sizeof(NCModes)))
       assume(shmvar(ncStatus, sizeof(NCStatus)))
       assume(shmvar(wdInfo, sizeof(WatchdogInfo)))
       assume(shmvar(tuneShm, sizeof(TuneBlock)))
       assume(shmvar(calShm, sizeof(CalBlock)))
       assume(noncore(fbShm))
       assume(noncore(ncCtrl))
       assume(noncore(ncModes))
       assume(noncore(ncStatus))
       assume(noncore(wdInfo))
       assume(noncore(tuneShm))
       assume(noncore(calShm)) ***/
}

void initCoreState()
{
  int i;
  for (i = 0; i < 6; i++) {
    stateEst[i] = 0.0;
  }
  for (i = 0; i < 3; i++) {
    prevSample[i] = 0.0;
  }
  for (i = 0; i < 8; i++) {
    cartHist[i] = 0.0;
    angle1Hist[i] = 0.0;
    angle2Hist[i] = 0.0;
  }
  ringHead = 0;
  ringCount = 0;
  prevOutput = 0.0;
  coreMode = 0;
  modeEntryTick = 0;
  loopCount = 0;
  lastNCSeq = 0;
  staleCount = 0;
  acceptCount = 0;
  rejectCount = 0;
  watchTick = 0;
}

/* ===================================================== sensor module ===== */

void pushSamples(double cart, double a1, double a2)
{
  cartHist[ringHead] = cart;
  angle1Hist[ringHead] = a1;
  angle2Hist[ringHead] = a2;
  ringHead = (ringHead + 1) % 8;
  if (ringCount < 8) {
    ringCount = ringCount + 1;
  }
}

double ringMean4(double *ring)
{
  int i;
  int idx;
  int n = 4;
  double sum = 0.0;
  if (n > ringCount) {
    n = ringCount;
  }
  if (n <= 0) {
    return 0.0;
  }
  idx = ringHead;
  for (i = 0; i < n; i++) {
    idx = idx - 1;
    if (idx < 0) {
      idx = 7;
    }
    sum = sum + ring[idx];
  }
  return sum / (double) n;
}

/* the calibration gains are applied to the raw angle channels */
void readSensors(double *cart, double *a1, double *a2)
{
  double c = readCartSensor();
  double x1 = votedAngle1() * calGain1;
  double x2 = votedAngle2() * calGain2;
  x1 = biquad(x1, notch1State, notch1Coeff);
  x2 = biquad(x2, notch2State, notch2Coeff);
  pushSamples(c, x1, x2);
  *cart = c;
  *a1 = x1;
  *a2 = x2;
}

/* ==================================================== state estimation === */

double diffVelocity(double current, double previous, double dtSeconds,
                    double smoothed)
{
  double raw;
  if (dtSeconds <= 0.0) {
    return smoothed;
  }
  raw = (current - previous) / dtSeconds;
  return 0.65 * smoothed + 0.35 * raw;
}

void estimateState()
{
  double dt = (double) periodUs / 1000000.0;
  double c = ringMean4(cartHist);
  double a1 = ringMean4(angle1Hist);
  double a2 = ringMean4(angle2Hist);
  stateEst[1] = diffVelocity(c, prevSample[0], dt, stateEst[1]);
  stateEst[3] = diffVelocity(a1, prevSample[1], dt, stateEst[3]);
  stateEst[5] = diffVelocity(a2, prevSample[2], dt, stateEst[5]);
  /*** SafeFlow Annotation assert(safe(a1)) ***/
  stateEst[0] = c;
  stateEst[2] = a1;
  stateEst[4] = a2;
  prevSample[0] = c;
  prevSample[1] = a1;
  prevSample[2] = a2;
  /* a consistency check between the two pole channels: in upright
     balance both should be small */
  if (a1 > 1.5 || a1 < -1.5 || a2 > 1.5 || a2 < -1.5) {
    log_event("pole angle out of physical range", a1);
  }
}

/* ================================================= safety controller ===== */

double clampOutput(double u)
{
  if (u > uMax) {
    return uMax;
  }
  if (u < uMin) {
    return uMin;
  }
  return u;
}

double computeSafeControl()
{
  double u = 0.0;
  int i;
  for (i = 0; i < 6; i++) {
    u = u - safetyGain[i] * stateEst[i];
  }
  /*** SafeFlow Annotation assert(safe(u)) ***/
  return clampOutput(u);
}

/* ======================================================= monitor ========= */

double lyapValue(double *x)
{
  int i;
  int j;
  double v = 0.0;
  for (i = 0; i < 6; i++) {
    for (j = 0; j < 6; j++) {
      v = v + x[i] * lyapP[i * 6 + j] * x[j];
    }
  }
  return v;
}

void predictNext(double u, double *next)
{
  double dt = (double) periodUs / 1000000.0;
  next[0] = stateEst[0] + dt * stateEst[1];
  next[1] = stateEst[1] + dt * (u - 0.981 * stateEst[2] - 0.981 * stateEst[4]);
  next[2] = stateEst[2] + dt * stateEst[3];
  next[3] = stateEst[3] + dt * (17.44 * stateEst[2] - 1.667 * u);
  next[4] = stateEst[4] + dt * stateEst[5];
  next[5] = stateEst[5] + dt * (34.88 * stateEst[4] - 3.333 * u);
}

/* original form: the recoverability check is inlined in decision() */

/* monitoring function for the calibration block: the scales are checked
 * against physical plausibility before they can become core gains */
void checkCalibration()
/*** SafeFlow Annotation assume(core(calShm, 0, sizeof(CalBlock))) ***/
{
  double s1 = calShm->scale1;
  double s2 = calShm->scale2;
  if (s1 > 0.9 && s1 < 1.1 && s2 > 0.9 && s2 < 1.1) {
    /*** SafeFlow Annotation assert(safe(s1)) ***/
    calGain1 = s1;
    calGain2 = s2;
  } else {
    log_event("calibration rejected", s1);
  }
}

/* ======================================================= decision ======== */

double decision(double safeControl)
{
  double u;
  double next[6];
  long seq;

  if (ncCtrl->valid == 1) {
    seq = ncCtrl->seq;
    if (seq + 8 >= lastNCSeq) {
      u = ncCtrl->control;
      if (u == u && u <= uMax && u >= uMin) {
        predictNext(u, next);
        if (lyapValue(next) <= lyapEnvelope) {
          acceptCount = acceptCount + 1;
          return u;
        }
      }
    }
  }
  rejectCount = rejectCount + 1;
  return safeControl;
}

/* ================================================== publication ========== */

void publishFeedback()
{
  fbShm->cart = stateEst[0];
  fbShm->cart_vel = stateEst[1];
  fbShm->angle1 = stateEst[2];
  fbShm->angle1_vel = stateEst[3];
  fbShm->angle2 = stateEst[4];
  fbShm->angle2_vel = stateEst[5];
  fbShm->seq = loopCount;
  fbShm->timestamp = current_time();
}

/* ============================================ supervision / watchdog ===== */

/* ERROR 2 SOURCE: the kill() pid is unmonitored non-core data */
void superviseNonCore()
{
  int armed = wdInfo->enable;
  if (armed == 1) {
    long hb = ncStatus->heartbeat;
    if (hb == watchTick) {
      int pid = wdInfo->nc_pid;
      kill(pid, 9);
      log_event("non-core restarted", (double) pid);
    }
    watchTick = hb;
  }
}

void trackFreshness()
{
  long seq = ncCtrl->seq;
  if (seq == lastNCSeq) {
    staleCount = staleCount + 1;
  } else {
    staleCount = 0;
  }
  lastNCSeq = seq;
}

/* ================================================== mode handling ======== */

/*
 * FP 1: the two-pole blending weight is selected by the non-core
 * dual-mode request; both candidate weights are core constants.
 */
double selectBlend()
{
  int dual = ncModes->dual_mode;
  double blend = blendBalance;
  if (dual == 1) {
    blend = blendTransition;
  }
  /*** SafeFlow Annotation assert(safe(blend)) ***/
  return blend;
}

/*
 * FP 2: the non-core can request a swing-up assist restart; the pid
 * signalled is the core's own record from spawn time.
 */
void handleSwingRequest()
{
  int req = ncModes->swing_request;
  if (req == 1) {
    kill(ncChildPid, 12);
    log_event("swing-up assist requested", (double) req);
  }
}

/* the core's own mode machine (independent of the non-core requests) */
void updateCoreMode()
{
  double a1 = stateEst[2];
  double a2 = stateEst[4];
  double mag = a1 * a1 + a2 * a2;
  switch (coreMode) {
    case 0:
      if (mag > 0.04) {
        coreMode = 1;
        modeEntryTick = loopCount;
      }
      break;
    case 1:
      if (mag < 0.01) {
        coreMode = 0;
        modeEntryTick = loopCount;
      }
      if (loopCount - modeEntryTick > 4000) {
        coreMode = 2;
      }
      break;
    case 2:
      if (mag < 0.005) {
        coreMode = 0;
      }
      break;
    default:
      coreMode = 0;
      break;
  }
}

/* =============================================== tuning application ====== */

/*
 * ERROR 1 SOURCE: the developer applies the suggested damping tweak from
 * the non-core optimizer directly, assuming a small additive nudge
 * cannot matter.  The value is unmonitored non-core data and it flows
 * straight into the actuator output.
 */
double applyDamping(double u)
{
  double extra = tuneShm->damping;
  return u - extra * stateEst[3];
}

/* the suggested stiffness is only logged (warning, but no dependency) */
void logTuning()
{
  double st = tuneShm->stiffness;
  if (st > 2.0) {
    log_event("optimizer suggests large stiffness", st);
  }
}


/* ============================================ swing energy estimator ===== */

/* total mechanical energy of the two poles relative to upright; used by
 * the core's own mode machine and for diagnostics */
double poleLength1 = 0.6;
double poleLength2 = 0.3;
double poleMass1 = 0.1;
double poleMass2 = 0.1;

double poleEnergy(double angle, double angleVel, double length, double mass)
{
  double g = 9.81;
  double kinetic = 0.5 * mass * length * length * angleVel * angleVel;
  double potential = mass * g * length * (1.0 - (1.0 - angle * angle * 0.5));
  return kinetic + potential;
}

double totalSwingEnergy()
{
  double e1 = poleEnergy(stateEst[2], stateEst[3], poleLength1, poleMass1);
  double e2 = poleEnergy(stateEst[4], stateEst[5], poleLength2, poleMass2);
  return e1 + e2;
}

int energyWithinBudget()
{
  if (totalSwingEnergy() > 0.35) {
    return 0;
  }
  return 1;
}

/* ============================================ channel consistency voter == */

/* each angle channel is sampled three times; a majority vote rejects a
 * single corrupted sample per channel */
double voteThree(double a, double b, double c)
{
  double ab = a - b;
  double ac = a - c;
  double bc = b - c;
  if (ab < 0.0) {
    ab = -ab;
  }
  if (ac < 0.0) {
    ac = -ac;
  }
  if (bc < 0.0) {
    bc = -bc;
  }
  /* pick the pair that agrees best and average it */
  if (ab <= ac && ab <= bc) {
    return (a + b) * 0.5;
  }
  if (ac <= ab && ac <= bc) {
    return (a + c) * 0.5;
  }
  return (b + c) * 0.5;
}

double votedAngle1()
{
  double s1 = readAngle1Sensor();
  double s2 = readAngle1Sensor();
  double s3 = readAngle1Sensor();
  return voteThree(s1, s2, s3);
}

double votedAngle2()
{
  double s1 = readAngle2Sensor();
  double s2 = readAngle2Sensor();
  double s3 = readAngle2Sensor();
  return voteThree(s1, s2, s3);
}

/* ================================================ notch filters ========== */

/* per-pole biquad notch filters at the two structural resonances */
double notch1State[4];
double notch2State[4];
double notch1Coeff[5] = { 0.977987, -1.868613, 0.977987, -1.815139, 0.902500 };
double notch2Coeff[5] = { 0.954610, -1.719152, 0.954610, -1.674832, 0.864900 };

void resetNotches()
{
  int i;
  for (i = 0; i < 4; i++) {
    notch1State[i] = 0.0;
    notch2State[i] = 0.0;
  }
}

double biquad(double sample, double *state, double *coeff)
{
  double y = coeff[0] * sample + coeff[1] * state[0] + coeff[2] * state[1]
           - coeff[3] * state[2] - coeff[4] * state[3];
  state[1] = state[0];
  state[0] = sample;
  state[3] = state[2];
  state[2] = y;
  return y;
}

/* ================================================ telemetry ring ========= */

struct TelemetryRecord {
  long   tick;
  double cart;
  double angle1;
  double angle2;
  double output;
  double energy;
};
typedef struct TelemetryRecord TelemetryRecord;

TelemetryRecord telemetryRing[64];
int telemetryHead;

void telemetryRecord(double output)
{
  TelemetryRecord *slot = &telemetryRing[telemetryHead];
  slot->tick = loopCount;
  slot->cart = stateEst[0];
  slot->angle1 = stateEst[2];
  slot->angle2 = stateEst[4];
  slot->output = output;
  slot->energy = totalSwingEnergy();
  telemetryHead = (telemetryHead + 1) % 64;
}

void telemetryFlush()
{
  int i;
  int idx = telemetryHead;
  for (i = 0; i < 8; i++) {
    idx = idx - 1;
    if (idx < 0) {
      idx = 63;
    }
    log_event("telemetry a1", telemetryRing[idx].angle1);
    log_event("telemetry a2", telemetryRing[idx].angle2);
    log_event("telemetry energy", telemetryRing[idx].energy);
  }
}

/* ================================================ startup self test ====== */

int selfTestPassed;

double dipSensorNoise(int which)
{
  int i;
  double sum = 0.0;
  double sumsq = 0.0;
  double v;
  for (i = 0; i < 32; i++) {
    if (which == 0) {
      v = readCartSensor();
    } else {
      if (which == 1) {
        v = readAngle1Sensor();
      } else {
        v = readAngle2Sensor();
      }
    }
    sum = sum + v;
    sumsq = sumsq + v * v;
    wait_period(250);
  }
  return (sumsq - sum * sum / 32.0) / 31.0;
}

int runSelfTest()
{
  int which;
  for (which = 0; which < 3; which++) {
    double var = dipSensorNoise(which);
    if (var < 0.0 || var > 0.01) {
      log_event("sensor noise out of spec", (double) which);
      return 0;
    }
  }
  sendControl(0.05);
  wait_period(1500);
  sendControl(-0.05);
  wait_period(1500);
  sendControl(0.0);
  log_event("self test passed", 3.0);
  return 1;
}

/* ================================================ shutdown sequence ====== */

void shutdownRamp(double fromOutput)
{
  double u = fromOutput;
  int i;
  for (i = 0; i < 24; i++) {
    u = u * 0.8;
    sendControl(u);
    wait_period(periodUs);
  }
  sendControl(0.0);
  log_event("shutdown ramp complete", 0.0);
}

/* ============================================ fault accounting =========== */

int faultCounts[8];

void recordFault(int kind)
{
  if (kind >= 0 && kind < 8) {
    faultCounts[kind] = faultCounts[kind] + 1;
  }
}

int totalFaults()
{
  int i;
  int total = 0;
  for (i = 0; i < 8; i++) {
    total = total + faultCounts[i];
  }
  return total;
}


/* ============================================ per-mode gain tables ======= */

/* each core mode uses its own LQR gain set; tables are core constants
 * tuned offline against the linearized two-pole model */
double balanceGain[6]    = { 0.9450, 2.5296, 176.6601, 43.9389, -159.8565, -27.8008 };
double transitionGain[6] = { 0.7560, 2.0237, 141.3281, 35.1511, -127.8852, -22.2406 };
double holdGain[6]       = { 1.0868, 2.9090, 203.1591, 50.5297, -183.8350, -31.9709 };

void applyModeGains()
{
  int i;
  for (i = 0; i < 6; i++) {
    if (coreMode == 0) {
      safetyGain[i] = balanceGain[i];
    } else {
      if (coreMode == 1) {
        safetyGain[i] = transitionGain[i];
      } else {
        safetyGain[i] = holdGain[i];
      }
    }
  }
}

/* ============================================ position hold module ======= */

/* in hold mode the trolley is regulated towards a parking position with
 * an integral term; the integrator is clamped and bled outside hold */
double holdTarget;
double holdIntegral;
double holdIntegralMax = 0.6;
double holdKi = 0.15;

void updateHold()
{
  if (coreMode == 2) {
    double err = holdTarget - stateEst[0];
    holdIntegral = holdIntegral + err * ((double) periodUs / 1000000.0);
    if (holdIntegral > holdIntegralMax) {
      holdIntegral = holdIntegralMax;
    }
    if (holdIntegral < -holdIntegralMax) {
      holdIntegral = -holdIntegralMax;
    }
  } else {
    holdIntegral = holdIntegral * 0.98;
  }
}

double holdCorrection()
{
  if (coreMode == 2) {
    return holdKi * holdIntegral;
  }
  return 0.0;
}

/* ============================================ loop timing accounting ===== */

long lastLoopStamp;
long worstJitter;
long jitterBudgetUs = 1500;
int  overrunCount;

void accountLoopTiming()
{
  long now = current_time();
  if (lastLoopStamp > 0) {
    long elapsed = now - lastLoopStamp;
    long jitter = elapsed - periodUs;
    if (jitter < 0) {
      jitter = -jitter;
    }
    if (jitter > worstJitter) {
      worstJitter = jitter;
    }
    if (jitter > jitterBudgetUs) {
      overrunCount = overrunCount + 1;
      recordFault(4);
      if (overrunCount % 50 == 1) {
        log_event("loop jitter over budget", (double) jitter);
      }
    }
  }
  lastLoopStamp = now;
}

void reportTiming()
{
  log_event("worst loop jitter", (double) worstJitter);
  log_event("overruns", (double) overrunCount);
  worstJitter = 0;
}


/* ============================================ parking brake supervisor === */

/* the test rig has an electromagnetic parking brake; the core engages it
 * when the system is at rest in hold mode and releases it before any
 * actuation resumes */
extern void setBrake(int engaged);

int brakeEngaged;
long brakeRestTicks;

int systemAtRest()
{
  double v = stateEst[1];
  double w1 = stateEst[3];
  double w2 = stateEst[5];
  if (v < 0.0) {
    v = -v;
  }
  if (w1 < 0.0) {
    w1 = -w1;
  }
  if (w2 < 0.0) {
    w2 = -w2;
  }
  if (v < 0.005 && w1 < 0.01 && w2 < 0.01) {
    return 1;
  }
  return 0;
}

void superviseBrake()
{
  if (coreMode == 2 && systemAtRest() == 1) {
    brakeRestTicks = brakeRestTicks + 1;
    if (brakeRestTicks > 400 && brakeEngaged == 0) {
      brakeEngaged = 1;
      setBrake(1);
      log_event("parking brake engaged", (double) loopCount);
    }
  } else {
    brakeRestTicks = 0;
    if (brakeEngaged == 1) {
      brakeEngaged = 0;
      setBrake(0);
      log_event("parking brake released", (double) loopCount);
    }
  }
}

int brakeBlocksActuation()
{
  if (brakeEngaged == 1) {
    return 1;
  }
  return 0;
}

/* ========================================================= main ========== */

int main()
{
  double cart;
  double a1;
  double a2;
  double safeControl;
  double output;
  double blend;

  initShm();
  initCoreState();
  resetNotches();
  selfTestPassed = runSelfTest();
  if (selfTestPassed == 0) {
    recordFault(0);
  }
  ncChildPid = spawn_noncore();
  checkCalibration();

  while (loopCount < 200000) {
    /* 1. sense and estimate */
    accountLoopTiming();
    readSensors(&cart, &a1, &a2);
    estimateState();
    updateCoreMode();
    applyModeGains();
    updateHold();

    /* 2. publish for the non-core subsystem */
    Lock(shmLock);
    publishFeedback();
    Unlock(shmLock);

    /* 3. core control */
    safeControl = computeSafeControl() + holdCorrection();
    safeControl = clampOutput(safeControl);
    /*** SafeFlow Annotation assert(safe(safeControl)) ***/
    wait_period(periodUs);

    /* 4. decision */
    Lock(shmLock);
    output = decision(safeControl);
    trackFreshness();
    Unlock(shmLock);

    blend = selectBlend();
    output = applyDamping(output * blend);
    superviseBrake();
    if (brakeBlocksActuation() == 1) {
      output = 0.0;
    }
    /*** SafeFlow Annotation assert(safe(output)) ***/
    sendControl(output);
    prevOutput = output;
    telemetryRecord(output);
    if (energyWithinBudget() == 0) {
      recordFault(1);
    }

    /* 5. housekeeping */
    handleSwingRequest();
    if (loopCount % 200 == 199) {
      superviseNonCore();
    }
    if (loopCount % 1000 == 999) {
      logTuning();
      checkCalibration();
    }
    if (loopCount % 2000 == 1999) {
      telemetryFlush();
      reportTiming();
    }
    if (totalFaults() > 200) {
      log_event("too many faults, stopping", (double) totalFaults());
      break;
    }
    loopCount = loopCount + 1;
  }
  shutdownRamp(prevOutput);
  return 0;
}
