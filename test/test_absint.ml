(* Value-range abstract interpretation (lib/absint): interval lattice
   laws, widening termination, branch refinement via dead-branch
   detection, the precision-only guarantee on the five subject systems
   (absint-on findings are a fingerprint subset of absint-off), and the
   A1/A2 discharge evidence on generic_simplex. *)

open Safeflow
module Itv = Absint.Itv

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let itv = Alcotest.testable Itv.pp Itv.equal

(* -- interval lattice -------------------------------------------------- *)

(* a small but adversarial universe: Bot, points, finite ranges, and all
   half-open/overlapping shapes including the infinities *)
let universe =
  let bounds = [ Itv.MInf; Itv.Fin (-7); Itv.Fin 0; Itv.Fin 3; Itv.PInf ] in
  Itv.bot
  :: List.concat_map
       (fun lo ->
         List.filter_map
           (fun hi ->
             match (lo, hi) with
             | Itv.Fin a, Itv.Fin b when a > b -> None
             | Itv.PInf, _ | _, Itv.MInf -> None
             | _ -> Some (Itv.Iv (lo, hi)))
           bounds)
       bounds

let forall2 f = List.iter (fun a -> List.iter (fun b -> f a b) universe) universe

let test_lattice_laws () =
  List.iter
    (fun a ->
      Alcotest.check itv "join idempotent" a (Itv.join a a);
      Alcotest.check itv "meet idempotent" a (Itv.meet a a);
      Alcotest.(check bool) "leq reflexive" true (Itv.leq a a);
      Alcotest.(check bool) "bot below all" true (Itv.leq Itv.bot a);
      Alcotest.(check bool) "all below top" true (Itv.leq a Itv.top))
    universe;
  forall2 (fun a b ->
      Alcotest.check itv "join commutative" (Itv.join a b) (Itv.join b a);
      Alcotest.check itv "meet commutative" (Itv.meet a b) (Itv.meet b a);
      Alcotest.(check bool) "join is upper bound" true
        (Itv.leq a (Itv.join a b) && Itv.leq b (Itv.join a b));
      Alcotest.(check bool) "meet is lower bound" true
        (Itv.leq (Itv.meet a b) a && Itv.leq (Itv.meet a b) b);
      (* absorption ties join and meet into one lattice *)
      Alcotest.check itv "absorption" a (Itv.meet a (Itv.join a b));
      Alcotest.check itv "absorption'" a (Itv.join a (Itv.meet a b)))

let test_widen_narrow () =
  forall2 (fun a b ->
      let w = Itv.widen a b in
      Alcotest.(check bool) "widen covers join" true (Itv.leq (Itv.join a b) w);
      (* narrowing never goes below the stable value it refines *)
      Alcotest.(check bool) "narrow sound" true (Itv.leq (Itv.meet a b) (Itv.narrow a b)));
  (* widening terminates: any strictly ascending chain stabilizes after
     at most one jump per bound *)
  List.iter
    (fun start ->
      let x = ref start in
      let steps = ref 0 in
      let stable = ref false in
      while (not !stable) && !steps < 5 do
        let next = Itv.add !x (Itv.const 1) in
        let w = Itv.widen !x (Itv.join !x next) in
        if Itv.equal w !x then stable := true else x := w;
        incr steps
      done;
      Alcotest.(check bool) "ascending chain stabilizes" true !stable)
    universe

let test_arith () =
  Alcotest.check itv "add" (Itv.range 4 6) (Itv.add (Itv.range 1 2) (Itv.range 3 4));
  Alcotest.check itv "sub" (Itv.range (-4) 1) (Itv.sub (Itv.range 1 2) (Itv.range 1 5));
  Alcotest.check itv "mul signs" (Itv.range (-10) 10)
    (Itv.mul (Itv.range (-2) 2) (Itv.range (-5) 5));
  Alcotest.check itv "neg" (Itv.range (-2) 1) (Itv.neg (Itv.range (-1) 2));
  Alcotest.check itv "add bot" Itv.bot (Itv.add Itv.bot (Itv.const 1));
  Alcotest.(check bool) "within" true (Itv.within (Itv.range 0 5) ~lo:0 ~hi:6);
  Alcotest.(check bool) "not within" false (Itv.within (Itv.range 0 7) ~lo:0 ~hi:6);
  Alcotest.(check bool) "bot within anything" true (Itv.within Itv.bot ~lo:0 ~hi:0);
  Alcotest.(check bool) "excludes zero" true (Itv.excludes_zero (Itv.range 1 9));
  Alcotest.(check bool) "contains zero" false (Itv.excludes_zero (Itv.range (-1) 9))

(* -- fixpoint on real programs ----------------------------------------- *)

(* clamp pattern: m is clamped into [0,3]; the branch on m > 7 can never
   be taken, so its control dependence on the non-core mode value is a
   false positive that the ranges remove *)
let clamp_src =
  {|
struct SHMData { int mode; int cmd; };
typedef struct SHMData SHMData;
SHMData *modeShm;
int shmLock;
extern void sendControl(int out);
void initComm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *shmStart;
  shmid = shmget(9000, sizeof(SHMData), 438);
  shmStart = shmat(shmid, (void *) 0, 0);
  modeShm = (SHMData *) shmStart;
  InitCheck(shmStart, sizeof(SHMData));
  /*** SafeFlow Annotation
       assume(shmvar(modeShm, sizeof(SHMData)))
       assume(noncore(modeShm)) ***/
}
int main()
{
  int m;
  int out;
  initComm();
  m = modeShm->mode;
  if (m < 0) { m = 0; }
  if (m > 3) { m = 3; }
  out = 1;
  if (m > 7) { out = 2; }
  /*** SafeFlow Annotation assert(safe(out)) ***/
  sendControl(out);
  return 0;
}
|}

let test_widening_terminates_on_loop () =
  (* unbounded counter loop: only widening makes the fixpoint finite *)
  let src =
    {|
int spin(int n)
{
  int i;
  int acc;
  acc = 0;
  i = 0;
  while (i < n) {
    acc = acc + 2;
    i = i + 1;
  }
  return acc;
}
int main() { return spin(50); }
|}
  in
  let p = Driver.prepare_source ~file:"loop.c" src in
  let ai = Absint.analyze p.Driver.ir in
  Alcotest.(check bool) "fixpoint ran" true (Absint.iterations ai > 0);
  Alcotest.(check bool) "widening fired" true (Absint.widenings ai > 0);
  (* the pass budget in run_function is 100 ascending iterations; a
     terminating analysis stays far under it even with two functions *)
  Alcotest.(check bool) "iterations bounded" true (Absint.iterations ai < 200)

let test_branch_refinement_kills_branch () =
  let p = Driver.prepare_source ~file:"clamp.c" clamp_src in
  let ai = Absint.analyze p.Driver.ir in
  let main =
    List.find (fun f -> f.Ssair.Ir.fname = "main") p.Driver.ir.Ssair.Ir.funcs
  in
  (* after the two clamps, m is in [0,3]: the m > 7 branch has a decided
     (always false) condition, so exactly its then-arm is dead *)
  let dead =
    List.filter_map
      (fun b -> Absint.dead_branch ai ~fname:"main" ~bid:b.Ssair.Ir.bbid)
      main.Ssair.Ir.blocks
  in
  Alcotest.(check bool) "a decided branch exists" true (dead <> []);
  Alcotest.(check bool) "its then arm is dead" true
    (List.exists (fun d -> d = Absint.Dead_then) dead)

(* -- report-level guarantees ------------------------------------------- *)

let analyze_with ~engine ~absint ?file src =
  let config = { Config.default with Config.engine; absint } in
  Driver.analyze ~config ?file src

let fingerprints (a : Driver.analysis) =
  let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
  List.sort_uniq compare (List.map fst (Fingerprint.of_report ctx a.Driver.report))

let test_clamp_control_dep_pruned () =
  List.iter
    (fun engine ->
      let name = Config.engine_name engine in
      let off = analyze_with ~engine ~absint:false ~file:"clamp.c" clamp_src in
      let on = analyze_with ~engine ~absint:true ~file:"clamp.c" clamp_src in
      Alcotest.(check int)
        (name ^ ": control dep reported without ranges")
        1
        (List.length (Report.control_deps off.Driver.report));
      Alcotest.(check int)
        (name ^ ": control dep pruned with ranges")
        0
        (List.length (Report.control_deps on.Driver.report));
      (* the data-flow warning on the unchecked mode read must survive:
         pruning is restricted to control dependences *)
      Alcotest.(check int)
        (name ^ ": warnings unchanged")
        (List.length off.Driver.report.Report.warnings)
        (List.length on.Driver.report.Report.warnings))
    [ Config.Legacy; Config.Worklist ]

let all_systems =
  [ "figure2.c"; "ip_controller.c"; "double_ip.c"; "car_follow.c";
    "generic_simplex.c" ]

let test_systems_fingerprint_subset () =
  List.iter
    (fun name ->
      let src =
        let ic = open_in_bin (find_system name) in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      List.iter
        (fun engine ->
          let off = analyze_with ~engine ~absint:false ~file:name src in
          let on = analyze_with ~engine ~absint:true ~file:name src in
          let fps_on = fingerprints on and fps_off = fingerprints off in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: on-findings are a subset of off-findings" name
               (Config.engine_name engine))
            true
            (List.for_all (fun fp -> List.mem fp fps_off) fps_on))
        [ Config.Legacy; Config.Worklist ])
    all_systems

let test_generic_simplex_discharges () =
  let a = Driver.analyze_file (find_system "generic_simplex.c") in
  let b = a.Driver.coverage.Coverage.cov_bounds in
  Alcotest.(check bool) "has A1/A2 obligations" true (b.Phase2.bs_total >= 1);
  Alcotest.(check bool) "at least one discharged by ranges" true
    (b.Phase2.bs_ranges >= 1);
  Alcotest.(check int) "none failed" 0 b.Phase2.bs_failed;
  Alcotest.(check bool) "Omega queries avoided" true (b.Phase2.bs_omega_avoided >= 1)

let () =
  Alcotest.run "absint"
    [ ( "interval lattice",
        [ Alcotest.test_case "lattice laws" `Quick test_lattice_laws;
          Alcotest.test_case "widen/narrow" `Quick test_widen_narrow;
          Alcotest.test_case "arithmetic" `Quick test_arith ] );
      ( "fixpoint",
        [ Alcotest.test_case "widening terminates on counter loop" `Quick
            test_widening_terminates_on_loop;
          Alcotest.test_case "branch refinement decides clamp guard" `Quick
            test_branch_refinement_kills_branch ] );
      ( "reports",
        [ Alcotest.test_case "clamp control dep pruned, both engines" `Quick
            test_clamp_control_dep_pruned;
          Alcotest.test_case "five systems: on ⊆ off fingerprints" `Slow
            test_systems_fingerprint_subset;
          Alcotest.test_case "generic_simplex discharges via ranges" `Quick
            test_generic_simplex_discharges ] ) ]
