(* Certificate pipeline tests:

   - round-trip identity: every certificate emitted for the five subject
     systems validates against a freshly parsed program, across both
     phase-3 engines and with absint on and off, and emission never
     perturbs the report;
   - cache states: cold, warm and dirty (corrupted on disk) cached runs
     produce byte-identical reports and byte-identical bundles, with the
     v7 payload digest catching the corruption and the on_recovery hook
     observing it;
   - negative tests: a tampered witness step, a widened absenv range and
     a dropped unsat-core hypothesis are each rejected with a precise
     error (the certificate digest is re-signed after tampering, so the
     rejection exercises the semantic check, not the content digest);
   - explain --json: the document parses and shares the certificate
     step-chain encoding. *)

open Safeflow
module J = Jsonlite

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let systems =
  [ "figure2.c"; "ip_controller.c"; "double_ip.c"; "car_follow.c";
    "generic_simplex.c" ]

let mkdtemp prefix =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) k) in
    if Sys.file_exists d then go (k + 1)
    else begin
      try
        Sys.mkdir d 0o700;
        d
      with Sys_error _ -> go (k + 1)
    end
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec rm_rf d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f ->
        let p = Filename.concat d f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir d);
    Sys.rmdir d
  end

let with_tmpdir f =
  let d = mkdtemp "sf-cert" in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* validate a bundle the way `safeflow check-cert` does: against a fresh
   parse of the source, never the emitting analysis's own structures *)
let validate_fresh path bdir =
  let prep = Driver.prepare_file path in
  let ir = prep.Driver.ir in
  let shm = Driver.stage_shm prep in
  let regions =
    List.map (fun (r : Shm.region) -> (r.Shm.r_name, r.Shm.r_size)) shm.Shm.regions
  in
  let d = Digest_ir.of_program ir in
  Checker.validate_bundle ~ir ~regions
    ~expect:[ ("program", d.Digest_ir.program); ("env", d.Digest_ir.env) ]
    ~check_finding:(Cert.check_finding_binding ir) bdir

let report_string (a : Driver.analysis) = Fmt.str "%a" Report.pp a.Driver.report

(* the bundle as a comparable value: every file's path and content *)
let bundle_files bdir =
  let rec walk prefix acc =
    Array.fold_left
      (fun acc f ->
        let p = Filename.concat prefix f in
        let full = Filename.concat bdir p in
        if Sys.is_directory full then walk p acc else (p, read_file full) :: acc)
      acc
      (Sys.readdir (Filename.concat bdir prefix))
  in
  List.sort compare (walk "" [])

(* -- round-trip grid ----------------------------------------------------------- *)

let check_roundtrip name =
  List.iter
    (fun engine ->
      List.iter
        (fun absint ->
          let tag =
            Printf.sprintf "%s/%s/absint=%b" name (Config.engine_name engine) absint
          in
          let config = { Config.default with Config.engine; absint } in
          let path = find_system name in
          let baseline = report_string (Driver.analyze_file ~config path) in
          with_tmpdir (fun dir ->
              let a = Driver.analyze_file ~config path in
              let s =
                match Cert.emit_bundle ~config ~label:path ~dir a with
                | Ok s -> s
                | Error e -> Alcotest.fail (tag ^ ": emission failed: " ^ e)
              in
              Alcotest.(check string)
                (tag ^ ": emission does not perturb the report")
                baseline (report_string a);
              Alcotest.(check int) (tag ^ ": nothing skipped") 0
                (List.length s.Cert.cs_skipped);
              Alcotest.(check bool) (tag ^ ": bundle nonempty") true
                (s.Cert.cs_written > 0);
              let o = validate_fresh path dir in
              List.iter
                (fun (f : Checker.failure) ->
                  Alcotest.fail
                    (tag ^ ": " ^ f.Checker.ce_id ^ ": " ^ f.Checker.ce_msg))
                o.Checker.failures;
              Alcotest.(check int) (tag ^ ": checker skipped") 0 o.Checker.skipped;
              Alcotest.(check int)
                (tag ^ ": every certificate verified")
                s.Cert.cs_written o.Checker.passed))
        [ true; false ])
    [ Config.Legacy; Config.Worklist ]

let test_roundtrip name () = check_roundtrip name

(* -- cache states: cold / warm / dirty ----------------------------------------- *)

let all_disk_files dir =
  let rec walk d acc =
    Array.fold_left
      (fun acc f ->
        let p = Filename.concat d f in
        if Sys.is_directory p then walk p acc else p :: acc)
      acc (Sys.readdir d)
  in
  walk dir []

(* flip the last byte of every entry file: the header unmarshals fine but
   the payload digest no longer matches — the v7 corrupt path *)
let corrupt_payloads dir =
  List.iter
    (fun p ->
      let s = Bytes.of_string (read_file p) in
      let i = Bytes.length s - 1 in
      Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 0xff));
      write_file p (Bytes.to_string s))
    (all_disk_files dir)

let test_cache_states () =
  let name = "generic_simplex.c" in
  let path = find_system name in
  let config = Config.default in
  let emit label a dir =
    match Cert.emit_bundle ~config ~label:path ~dir a with
    | Ok _ -> bundle_files dir
    | Error e -> Alcotest.fail (label ^ ": emission failed: " ^ e)
  in
  with_tmpdir (fun root ->
      let cache_dir = Filename.concat root "cache" in
      let bundle sub = Filename.concat root sub in
      (* sequential no-cache baseline *)
      let a0 = Driver.analyze_file ~config path in
      let r0 = report_string a0 in
      let b0 = emit "baseline" a0 (bundle "b0") in
      (* cold *)
      let c1 = Cache.create ~dir:cache_dir () in
      let a1 = Driver.analyze_file ~config ~cache:c1 path in
      Alcotest.(check string) "cold report" r0 (report_string a1);
      Alcotest.(check bool) "cold bundle" true (b0 = emit "cold" a1 (bundle "b1"));
      (* warm: a fresh cache instance over the same directory *)
      let c2 = Cache.create ~dir:cache_dir () in
      let a2 = Driver.analyze_file ~config ~cache:c2 path in
      Alcotest.(check string) "warm report" r0 (report_string a2);
      Alcotest.(check bool) "warm bundle" true (b0 = emit "warm" a2 (bundle "b2"));
      (* dirty: every disk payload corrupted in place; the digest in the
         v7 entry header catches it, the entry is recomputed, and the
         recovery is surfaced through on_recovery *)
      corrupt_payloads cache_dir;
      let recoveries = ref [] in
      let c3 =
        Cache.create ~dir:cache_dir
          ~on_recovery:(fun ~kind ~ns ~key:_ -> recoveries := (kind, ns) :: !recoveries)
          ()
      in
      let a3 = Driver.analyze_file ~config ~cache:c3 path in
      Alcotest.(check string) "dirty report recomputed identically" r0
        (report_string a3);
      Alcotest.(check bool) "dirty bundle" true (b0 = emit "dirty" a3 (bundle "b3"));
      let corrupt =
        List.fold_left
          (fun acc (_, (s : Cache.ns_stats)) -> acc + s.Cache.corrupt)
          0 (Cache.detailed_stats c3)
      in
      Alcotest.(check bool) "corruption detected" true (corrupt > 0);
      Alcotest.(check bool) "on_recovery saw it" true
        (List.exists (fun (k, _) -> k = "corrupt") !recoveries))

(* -- tampering helpers ---------------------------------------------------------- *)

let obj_update k f = function
  | J.Obj kvs -> J.Obj (List.map (fun (k', v) -> if k' = k then (k, f v) else (k', v)) kvs)
  | j -> j

let jstr = function J.Str s -> s | _ -> Alcotest.fail "expected a JSON string"

let manifest_certs bdir =
  let m = J.parse_exn (read_file (Filename.concat bdir "manifest.json")) in
  match J.member "certs" m with
  | Some (J.Arr l) -> (m, l)
  | _ -> Alcotest.fail "manifest has no certs array"

let cert_entry bdir ~kind ?(where = fun _ -> true) () =
  let _, certs = manifest_certs bdir in
  match
    List.find_opt
      (fun e ->
        Option.map jstr (J.member "kind" e) = Some kind
        &&
        let body = J.parse_exn (read_file (Filename.concat bdir (jstr (Option.get (J.member "path" e))))) in
        where body)
      certs
  with
  | Some e -> e
  | None -> Alcotest.fail ("no " ^ kind ^ " certificate in bundle")

(* tamper a certificate body and re-sign it: rewrite the file AND the
   manifest digest, so validation reaches the semantic check rather than
   stopping at "content digest mismatch" *)
let tamper_resign bdir entry (f : J.t -> J.t) =
  let path = jstr (Option.get (J.member "path" entry)) in
  let id = jstr (Option.get (J.member "id" entry)) in
  let body' = J.emit (f (J.parse_exn (read_file (Filename.concat bdir path)))) in
  write_file (Filename.concat bdir path) body';
  let digest' = Checker.md5_hex body' in
  let m = J.parse_exn (read_file (Filename.concat bdir "manifest.json")) in
  let m' =
    obj_update "certs"
      (function
        | J.Arr l ->
          J.Arr
            (List.map
               (fun e ->
                 if Option.map jstr (J.member "id" e) = Some id then
                   obj_update "digest" (fun _ -> J.Str digest') e
                 else e)
               l)
        | j -> j)
      m
  in
  write_file (Filename.concat bdir "manifest.json") (J.emit m');
  id

let the_failure tag (o : Checker.outcome) =
  match o.Checker.failures with
  | [ f ] -> f
  | [] -> Alcotest.fail (tag ^ ": tampered bundle validated cleanly")
  | fs ->
    List.hd fs
    |> fun f ->
    ignore f;
    Alcotest.fail
      (tag ^ ": expected one failure, got "
      ^ String.concat "; "
          (List.map (fun (f : Checker.failure) -> f.Checker.ce_id ^ ": " ^ f.Checker.ce_msg) fs))

let contains ~sub s = Astring.String.is_infix ~affix:sub s

let emit_for ~config path dir =
  let a = Driver.analyze_file ~config path in
  match Cert.emit_bundle ~config ~label:path ~dir a with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("emission failed: " ^ e)

(* -- negative: tampered witness step -------------------------------------------- *)

let test_tamper_witness () =
  let path = find_system "generic_simplex.c" in
  let config = Config.default in
  with_tmpdir (fun dir ->
      emit_for ~config path dir;
      let entry = cert_entry dir ~kind:"witness" () in
      let id =
        tamper_resign dir entry
          (obj_update "steps" (function
            | J.Arr (s0 :: rest) ->
              J.Arr (obj_update "desc" (fun d -> J.Str (jstr d ^ " (tampered)")) s0 :: rest)
            | j -> j))
      in
      let o = validate_fresh path dir in
      let f = the_failure "witness" o in
      Alcotest.(check string) "failure names the tampered certificate" id
        f.Checker.ce_id;
      Alcotest.(check bool)
        ("chain break reported: " ^ f.Checker.ce_msg)
        true
        (contains ~sub:"link digest mismatch" f.Checker.ce_msg))

(* -- negative: widened absenv range --------------------------------------------- *)

(* widen every finite interval bound in the target function by a large
   constant: the recorded fixpoint is no longer consistent (some recorded
   fact stops containing its one-step evaluation, or a range discharge
   stops proving its bound) *)
let widen_absenv_func fname aj =
  let widen_bound sign = function
    | J.Str s -> J.Str (string_of_int ((int_of_string s * 10) + (sign * 1000)))
    | j -> j
  in
  let widen_itv = function
    | J.Obj _ as itv ->
      obj_update "lo" (widen_bound (-1)) (obj_update "hi" (widen_bound 1) itv)
    | j -> j
  in
  let widen_pair = function
    | J.Arr [ k; itv ] -> J.Arr [ k; widen_itv itv ]
    | j -> j
  in
  obj_update "funcs"
    (function
      | J.Arr fs ->
        J.Arr
          (List.map
             (fun fj ->
               if Option.map jstr (J.member "func" fj) = Some fname then
                 obj_update "env"
                   (function J.Arr ps -> J.Arr (List.map widen_pair ps) | j -> j)
                   fj
               else fj)
             fs)
      | j -> j)
    aj

let test_tamper_absenv () =
  let path = find_system "generic_simplex.c" in
  let config = Config.default in
  with_tmpdir (fun dir ->
      emit_for ~config path dir;
      (* sanity: untampered bundle validates *)
      Alcotest.(check int) "pre-tamper clean" 0
        (List.length (validate_fresh path dir).Checker.failures);
      let entry = cert_entry dir ~kind:"obligation" () in
      let oblig = J.parse_exn (read_file (Filename.concat dir (jstr (Option.get (J.member "path" entry))))) in
      let fname = jstr (Option.get (J.member "func" oblig)) in
      let apath = Filename.concat dir "absenv.json" in
      let body' = J.emit (widen_absenv_func fname (J.parse_exn (read_file apath))) in
      write_file apath body';
      (* re-sign the absenv digest in the manifest so the rejection comes
         from re-verification, not the content digest *)
      let m = J.parse_exn (read_file (Filename.concat dir "manifest.json")) in
      let m' =
        obj_update "absenv"
          (obj_update "digest" (fun _ -> J.Str (Checker.md5_hex body')))
          m
      in
      write_file (Filename.concat dir "manifest.json") (J.emit m');
      let o = validate_fresh path dir in
      Alcotest.(check bool) "widened ranges rejected" true
        (o.Checker.failures <> []);
      let f = List.hd o.Checker.failures in
      Alcotest.(check bool)
        ("precise reason: " ^ f.Checker.ce_id ^ ": " ^ f.Checker.ce_msg)
        true
        (contains ~sub:"does not contain" f.Checker.ce_msg
        || contains ~sub:"do not prove the bound" f.Checker.ce_msg))

(* -- negative: dropped unsat-core hypothesis ------------------------------------ *)

let test_tamper_core () =
  let path = find_system "generic_simplex.c" in
  (* absint off forces the omega discharge path, so obligations carry
     unsat cores rather than range proofs *)
  let config = { Config.default with Config.absint = false } in
  with_tmpdir (fun dir ->
      emit_for ~config path dir;
      let entry =
        cert_entry dir ~kind:"obligation"
          ~where:(fun c ->
            match J.member "sides" c with
            | Some sides -> (
              match J.member "low" sides with
              | Some lo -> Option.map jstr (J.member "by" lo) = Some "omega"
              | None -> false)
            | None -> false)
          ()
      in
      let id =
        tamper_resign dir entry
          (obj_update "sides"
             (obj_update "low" (obj_update "core" (fun _ -> J.Arr []))))
      in
      let o = validate_fresh path dir in
      let f = the_failure "core" o in
      Alcotest.(check string) "failure names the tampered certificate" id
        f.Checker.ce_id;
      Alcotest.(check bool)
        ("refutation failure reported: " ^ f.Checker.ce_msg)
        true
        (contains ~sub:"could not refute" f.Checker.ce_msg))

(* -- negative: unsigned tamper is caught by the content digest ------------------- *)

let test_tamper_digest () =
  let path = find_system "figure2.c" in
  let config = Config.default in
  with_tmpdir (fun dir ->
      emit_for ~config path dir;
      let _, certs = manifest_certs dir in
      let entry = List.hd certs in
      let p = Filename.concat dir (jstr (Option.get (J.member "path" entry))) in
      write_file p (read_file p ^ " ");
      let o = validate_fresh path dir in
      Alcotest.(check bool) "digest mismatch detected" true
        (List.exists
           (fun (f : Checker.failure) ->
             contains ~sub:"content digest mismatch" f.Checker.ce_msg)
           o.Checker.failures))

(* -- explain --json -------------------------------------------------------------- *)

let test_explain_json () =
  let path = find_system "generic_simplex.c" in
  let a = Driver.analyze_file path in
  let doc = Cert.explain_json ~label:path a in
  (* serialization round-trips *)
  let j = J.parse_exn (J.emit doc) in
  Alcotest.(check (option string)) "schema" (Some Cert.explain_schema)
    (Option.bind (J.member "schema" j) J.to_string);
  Alcotest.(check (option string)) "file label" (Some path)
    (Option.bind (J.member "file" j) J.to_string);
  let deps =
    match J.member "dependencies" j with Some (J.Arr l) -> l | _ -> []
  in
  Alcotest.(check bool) "has dependencies" true (deps <> []);
  (* witness paths use the certificate step-chain encoding: each step's
     link recomputes from its content and the preceding link *)
  List.iter
    (fun d ->
      match J.member "steps" d with
      | Some (J.Arr steps) ->
        let _ =
          List.fold_left
            (fun prev s ->
              let g k = Option.bind (J.member k s) J.to_string in
              let desc = Option.value ~default:"" (g "desc") in
              let key = Option.value ~default:"" (g "key") in
              let why = g "why" in
              let expect = Checker.step_link ~desc ~why ~key ~prev in
              Alcotest.(check (option string)) "step link chain" (Some expect)
                (g "link");
              expect)
            "" steps
        in
        ()
      | _ -> ())
    deps

(* -- suite ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "cert"
    [
      ( "roundtrip",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_roundtrip name))
          systems );
      ( "cache",
        [ Alcotest.test_case "cold/warm/dirty identity" `Quick test_cache_states ] );
      ( "negative",
        [
          Alcotest.test_case "tampered witness step" `Quick test_tamper_witness;
          Alcotest.test_case "widened absenv range" `Quick test_tamper_absenv;
          Alcotest.test_case "dropped unsat-core hypothesis" `Quick test_tamper_core;
          Alcotest.test_case "unsigned tamper" `Quick test_tamper_digest;
        ] );
      ( "explain",
        [ Alcotest.test_case "json document" `Quick test_explain_json ] );
    ]
