(* Property and unit tests for the flat phase-3 engine layout
   (lib/safeflow/vfgraph.ml Csr, lib/safeflow/bitset.ml):

   - the CSR adjacency built from a random flat edge list is
     edge-set-identical to a reference hashtable adjacency, and each row
     reads in reverse insertion order (the cons-list order the drain's
     first-win taint origins depend on);
   - packed bitsets behave like a reference bool array across word
     boundaries, growth and counting. *)

open Safeflow

(* -- CSR ≡ hashtable adjacency ---------------------------------------------- *)

(* reference: the cons-list adjacency the CSR replaced — prepend each
   edge under its source, so a bucket reads newest-first *)
let reference_adjacency n edges =
  let t : (int, (int * int) list) Hashtbl.t = Hashtbl.create (2 * n) in
  List.iter
    (fun (s, d, i) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt t s) in
      Hashtbl.replace t s ((d, i) :: cur))
    edges;
  t

let build_csr n edges =
  let len = List.length edges in
  let src = Array.make (max len 1) 0
  and dst = Array.make (max len 1) 0
  and info = Array.make (max len 1) 0 in
  List.iteri
    (fun k (s, d, i) ->
      src.(k) <- s;
      dst.(k) <- d;
      info.(k) <- i)
    edges;
  Vfgraph.Csr.build ~n ~src ~dst ~info ~len

let edges_gen =
  QCheck.Gen.(
    int_range 1 40 >>= fun n ->
    list_size (int_range 0 200)
      (map3 (fun s d i -> (s, d, i)) (int_range 0 (n - 1)) (int_range 0 (n - 1))
         (int_range 0 1000))
    >>= fun edges -> return (n, edges))

let prop_csr_matches_reference =
  let arb =
    QCheck.make
      ~print:(fun (n, edges) -> Fmt.str "n=%d edges=%d" n (List.length edges))
      edges_gen
  in
  QCheck.Test.make ~name:"CSR rows = hashtable adjacency (reverse insertion order)"
    ~count:300 arb (fun (n, edges) ->
      let csr = build_csr n edges in
      let reference = reference_adjacency n edges in
      let ok = ref true in
      for s = 0 to n - 1 do
        let want = Option.value ~default:[] (Hashtbl.find_opt reference s) in
        if Vfgraph.Csr.row csr s <> want then ok := false;
        if Vfgraph.Csr.degree csr s <> List.length want then ok := false
      done;
      !ok)

let test_csr_empty () =
  let csr = build_csr 5 [] in
  for s = 0 to 4 do
    Alcotest.(check int) "empty graph has empty rows" 0 (Vfgraph.Csr.degree csr s);
    Alcotest.(check (list (pair int int))) "row of empty graph" [] (Vfgraph.Csr.row csr s)
  done

let test_csr_duplicates () =
  (* parallel edges must all be kept, newest first *)
  let csr = build_csr 2 [ (0, 1, 7); (0, 1, 7); (0, 1, 9) ] in
  Alcotest.(check (list (pair int int)))
    "duplicate edges preserved in reverse insertion order"
    [ (1, 9); (1, 7); (1, 7) ]
    (Vfgraph.Csr.row csr 0)

(* -- Bitset ------------------------------------------------------------------ *)

let test_bitset_word_boundaries () =
  let b = Bitset.create 128 in
  (* exercise both sides of every plausible word size *)
  let probes = [ 0; 1; 30; 31; 32; 33; 61; 62; 63; 64; 65; 66; 127 ] in
  List.iter (fun i -> Bitset.set b i) probes;
  for i = 0 to 127 do
    Alcotest.(check bool) (Fmt.str "bit %d" i) (List.mem i probes) (Bitset.get b i)
  done;
  Alcotest.(check int) "count equals set bits" (List.length probes) (Bitset.count b);
  (* clearing one side of a boundary must not disturb the other *)
  Bitset.clear b 32;
  Alcotest.(check bool) "cleared bit is absent" false (Bitset.get b 32);
  Alcotest.(check bool) "neighbour below survives" true (Bitset.get b 31);
  Alcotest.(check bool) "neighbour above survives" true (Bitset.get b 33);
  Alcotest.(check int) "count tracks clear" (List.length probes - 1) (Bitset.count b)

let test_bitset_growth () =
  let b = Bitset.create 1 in
  Bitset.set b 0;
  Bitset.set b 1000;
  Alcotest.(check bool) "bit set before growth survives" true (Bitset.get b 0);
  Alcotest.(check bool) "bit set after growth present" true (Bitset.get b 1000);
  Alcotest.(check bool) "untouched bit absent" false (Bitset.get b 500);
  Alcotest.(check bool) "beyond capacity reads absent" false (Bitset.get b 100_000);
  Alcotest.(check int) "count after growth" 2 (Bitset.count b);
  Bitset.ensure b 5000;
  Alcotest.(check bool) "ensure keeps contents" true (Bitset.get b 1000);
  Alcotest.(check bool) "ensure grows capacity" true (Bitset.capacity b >= 5000)

let prop_bitset_matches_bool_array =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 300) (pair (int_range 0 200) bool))
  in
  let arb =
    QCheck.make ~print:(fun ops -> Fmt.str "%d ops" (List.length ops)) gen
  in
  QCheck.Test.make ~name:"bitset = reference bool array under random set/clear"
    ~count:300 arb (fun ops ->
      let b = Bitset.create 8 in
      let reference = Array.make 201 false in
      List.iter
        (fun (i, set) ->
          if set then begin
            Bitset.set b i;
            reference.(i) <- true
          end
          else begin
            Bitset.clear b i;
            reference.(i) <- false
          end)
        ops;
      let ok = ref (Bitset.count b = Array.fold_left (fun a x -> if x then a + 1 else a) 0 reference) in
      Array.iteri (fun i v -> if Bitset.get b i <> v then ok := false) reference;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "csr"
    [ ( "csr",
        [ qt prop_csr_matches_reference;
          Alcotest.test_case "empty" `Quick test_csr_empty;
          Alcotest.test_case "parallel edges" `Quick test_csr_duplicates ] );
      ( "bitset",
        [ Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundaries;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          qt prop_bitset_matches_bool_array ] ) ]
