(* Diagnostics surface: fingerprint stability, SARIF export, findings
   files and differential reports, monitoring coverage, CI gating.

   The load-bearing property is fingerprint invariance — the same
   finding must get the same identity across engine choice, cache state,
   parallelism settings and function reordering — because baselines and
   diffs are keyed on nothing else. *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let system_files =
  [ "figure2.c"; "ip_controller.c"; "double_ip.c"; "car_follow.c"; "generic_simplex.c" ]

let fingerprints ?config ?cache src =
  let a = Driver.analyze ?config ?cache src in
  let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
  List.map fst (Fingerprint.of_report ctx a.Driver.report)

let sorted_fps ?config ?cache src = List.sort compare (fingerprints ?config ?cache src)

let slist = Alcotest.(list string)

(* -- fingerprint invariance ---------------------------------------------------- *)

let test_engine_invariance name () =
  let src = read_file (find_system name) in
  let legacy = sorted_fps ~config:{ Config.default with engine = Config.Legacy } src in
  let worklist =
    sorted_fps ~config:{ Config.default with engine = Config.Worklist } src
  in
  Alcotest.check slist "legacy = worklist" legacy worklist;
  Alcotest.(check bool) "non-empty" true (legacy <> [])

let test_parallelism_invariance name () =
  let src = read_file (find_system name) in
  let fps n =
    sorted_fps
      ~config:{ Config.default with engine = Config.Worklist; pair_domains = n }
      src
  in
  Alcotest.check slist "sequential = parallel" (fps 1) (fps 0)

(* cache entries live under a generation subdirectory of the root *)
let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun e ->
        let p = Filename.concat dir e in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_temp_dir f =
  let dir = Filename.temp_file "safeflow_diag" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_cache_invariance name () =
  let src = read_file (find_system name) in
  let bare = sorted_fps src in
  with_temp_dir (fun dir ->
      let cache = Cache.create ~dir () in
      let cold = sorted_fps ~cache src in
      let warm = sorted_fps ~cache src in
      Alcotest.check slist "no cache = cold" bare cold;
      Alcotest.check slist "cold = warm" cold warm)

(* Reordering two functions (and shifting every absolute line with an
   extra leading comment) must not change any fingerprint: spans are
   recorded relative to the enclosing function. *)

let reorder_head = {|struct D { double a; double b; };
typedef struct D D;

D *fb;

extern void out(double v);

void initComm()
/*** SafeFlow Annotation shminit ***/
{
  int shmid;
  void *s;
  shmid = shmget(9000, sizeof(D), 438);
  s = shmat(shmid, (void *) 0, 0);
  fb = (D *) s;
  InitCheck(s, sizeof(D));
  /*** SafeFlow Annotation
       assume(shmvar(fb, sizeof(D)))
       assume(noncore(fb)) ***/
}
|}

let read_a = {|
double readA(D *f)
{
  double v = f->a;
  return v;
}
|}

let read_b = {|
double readB(D *f)
{
  double w = f->b + 1.0;
  return w;
}
|}

let reorder_tail = {|
int main()
{
  double x;
  initComm();
  x = readA(fb) + readB(fb);
  /*** SafeFlow Annotation assert(safe(x)) ***/
  out(x);
  return 0;
}
|}

let test_reorder_invariance () =
  let v1 = reorder_head ^ read_a ^ read_b ^ reorder_tail in
  let v2 = "/* shifted */\n/* shifted */\n" ^ reorder_head ^ read_b ^ read_a ^ reorder_tail in
  let f1 = sorted_fps v1 and f2 = sorted_fps v2 in
  Alcotest.(check bool) "findings present" true (List.length f1 >= 3);
  Alcotest.check slist "reorder + shift invariant" f1 f2

(* -- report determinism -------------------------------------------------------- *)

let test_byte_identical name () =
  let src = read_file (find_system name) in
  let render engine =
    Report.to_string (Driver.analyze ~config:{ Config.default with engine } src).Driver.report
  in
  Alcotest.(check string) "engines render identically" (render Config.Legacy)
    (render Config.Worklist)

let test_canonical_order name () =
  let src = read_file (find_system name) in
  let a = Driver.analyze src in
  let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
  let check_sorted what keys =
    Alcotest.(check bool) (what ^ " sorted") true (List.sort compare keys = keys)
  in
  let key f = (Fingerprint.loc f, Fingerprint.compute ctx f) in
  let r = a.Driver.report in
  check_sorted "warnings" (List.map (fun w -> key (Fingerprint.Warning w)) r.Report.warnings);
  check_sorted "violations"
    (List.map (fun v -> key (Fingerprint.Violation v)) r.Report.violations);
  check_sorted "dependencies"
    (List.map (fun d -> key (Fingerprint.Dependency d)) r.Report.dependencies)

(* -- SARIF --------------------------------------------------------------------- *)

(* Minimal JSON reader: enough of RFC 8259 to prove the export is
   well-formed and to walk its structure.  No external parser is
   available in this environment, so we vendor the ~60 lines here. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Fmt.str "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Fmt.str "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              (match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape")
            done;
            Buffer.add_char b '?'
          | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
            advance ();
            Buffer.add_char b c
          | _ -> fail "bad escape");
          go ()
        | Some c -> advance (); Buffer.add_char b c; go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
        end
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad ("missing member " ^ k)))
    | _ -> raise (Bad ("not an object looking up " ^ k))

  let to_list = function Arr l -> l | _ -> raise (Bad "not an array")

  let to_string = function Str s -> s | _ -> raise (Bad "not a string")
end

let sarif_inputs names =
  List.map
    (fun name ->
      let file = find_system name in
      let a = Driver.analyze_file file in
      let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
      (a, { Sarif.i_file = file; i_report = a.Driver.report; i_ctx = ctx }))
    names

let test_sarif_structure () =
  let inputs = sarif_inputs system_files in
  let doc = Sarif.to_string ~tool_version:"test" (List.map snd inputs) in
  let json = try Json.parse doc with Json.Bad m -> Alcotest.fail ("bad JSON: " ^ m) in
  Alcotest.(check string) "version" Sarif.sarif_version
    Json.(to_string (member "version" json));
  Alcotest.(check string) "$schema" Sarif.schema_uri
    Json.(to_string (member "$schema" json));
  let run = List.hd Json.(to_list (member "runs" json)) in
  let driver = Json.(member "driver" (member "tool" run)) in
  Alcotest.(check string) "driver name" "safeflow"
    Json.(to_string (member "name" driver));
  let rules = Json.(to_list (member "rules" driver)) in
  Alcotest.(check int) "every code has a rule" (List.length Report.rules)
    (List.length rules);
  let rule_ids = List.map (fun r -> Json.(to_string (member "id" r))) rules in
  List.iter
    (fun (rule : Report.rule) ->
      Alcotest.(check bool) (rule.Report.rule_id ^ " present") true
        (List.mem rule.Report.rule_id rule_ids))
    Report.rules;
  let results = Json.(to_list (member "results" run)) in
  let finding_count =
    List.fold_left
      (fun acc (a, _) ->
        let r = a.Driver.report in
        acc
        + List.length r.Report.violations
        + List.length r.Report.warnings
        + List.length r.Report.dependencies)
      0 inputs
  in
  Alcotest.(check int) "one result per finding" finding_count (List.length results);
  List.iter
    (fun res ->
      let rule_id = Json.(to_string (member "ruleId" res)) in
      Alcotest.(check bool) "ruleId registered" true (List.mem rule_id rule_ids);
      let fp =
        Json.(to_string (member Sarif.fingerprint_key (member "partialFingerprints" res)))
      in
      Alcotest.(check int) "fingerprint is hex md5" 32 (String.length fp);
      ignore Json.(to_list (member "locations" res)))
    results;
  (* dependencies must carry their witness as a codeFlow *)
  let with_flows =
    List.filter
      (fun res ->
        match Json.member "codeFlows" res with
        | exception Json.Bad _ -> false
        | flows -> Json.to_list flows <> [])
      results
  in
  let dep_count =
    List.fold_left
      (fun acc (a, _) -> acc + List.length a.Driver.report.Report.dependencies)
      0 inputs
  in
  Alcotest.(check int) "codeFlow per dependency" dep_count (List.length with_flows)

(* -- findings files and diff --------------------------------------------------- *)

let entries_of name =
  let file = find_system name in
  let a = Driver.analyze_file file in
  let ctx = Fingerprint.ctx_of_program a.Driver.prepared.Driver.ir in
  Diffreport.entries_of_report ctx ~file a.Driver.report

let test_findings_roundtrip () =
  let entries = entries_of "ip_controller.c" in
  Alcotest.(check bool) "non-empty" true (entries <> []);
  let text = Diffreport.to_string entries in
  Alcotest.(check bool) "sniffs as findings" true (Diffreport.looks_like_findings text);
  Alcotest.(check bool) "source does not sniff" false
    (Diffreport.looks_like_findings (read_file (find_system "figure2.c")));
  let back = Diffreport.parse text in
  Alcotest.(check int) "entry count" (List.length entries) (List.length back);
  List.iter2
    (fun (a : Diffreport.entry) (b : Diffreport.entry) ->
      Alcotest.(check string) "fp" a.Diffreport.e_fp b.Diffreport.e_fp;
      Alcotest.(check string) "code" a.Diffreport.e_code b.Diffreport.e_code;
      Alcotest.(check string) "where" a.Diffreport.e_where b.Diffreport.e_where;
      Alcotest.(check string) "msg" a.Diffreport.e_msg b.Diffreport.e_msg)
    entries back

let test_diff_identical name () =
  let entries = entries_of name in
  let d = Diffreport.diff ~baseline:entries ~current:entries in
  Alcotest.(check int) "no new" 0 (List.length d.Diffreport.d_new);
  Alcotest.(check int) "no fixed" 0 (List.length d.Diffreport.d_fixed);
  Alcotest.(check int) "all unchanged" (List.length entries)
    (List.length d.Diffreport.d_unchanged)

(* Every baseline/current pair must partition exactly:
   current = new + unchanged, baseline = fixed + unchanged. *)
let check_delta ~expect_nonempty baseline_name current_name =
  let baseline = entries_of baseline_name and current = entries_of current_name in
  let d = Diffreport.diff ~baseline ~current in
  let n = List.length d.Diffreport.d_new
  and f = List.length d.Diffreport.d_fixed
  and u = List.length d.Diffreport.d_unchanged in
  Alcotest.(check int) "current partition" (List.length current) (n + u);
  Alcotest.(check int) "baseline partition" (List.length baseline) (f + u);
  if expect_nonempty then
    Alcotest.(check bool) "delta non-empty" true (n + f > 0)

let test_diff_originals () =
  check_delta ~expect_nonempty:true "originals/ip_controller_orig.c" "ip_controller.c";
  check_delta ~expect_nonempty:true "originals/double_ip_orig.c" "double_ip.c"

let test_diff_noncore () =
  (* the noncore variants are fully monitored: every finding of the
     subject system is classified fixed, nothing survives *)
  List.iter
    (fun (subject, variant) ->
      let baseline = entries_of subject and current = entries_of variant in
      Alcotest.(check int) (variant ^ " clean") 0 (List.length current);
      let d = Diffreport.diff ~baseline ~current in
      Alcotest.(check bool) (subject ^ " all fixed") true
        (List.length d.Diffreport.d_fixed = List.length baseline
        && List.length baseline > 0);
      Alcotest.(check int) (subject ^ " nothing new") 0 (List.length d.Diffreport.d_new))
    [ ("ip_controller.c", "noncore/ip_complex.c");
      ("double_ip.c", "noncore/dip_complex.c");
      ("generic_simplex.c", "noncore/generic_complex.c") ]

(* -- gating -------------------------------------------------------------------- *)

let entry code = { Diffreport.e_fp = "0"; e_code = code; e_where = "x:1:1"; e_msg = "m" }

let test_gate () =
  let warn = entry Report.code_unmonitored_read
  and err = entry Report.code_critical_dep
  and note = entry Report.code_control_dep in
  let check l expected entries =
    Alcotest.(check int) l expected (Diffreport.gate ~fail_on:`Warning entries)
  in
  check "clean" 0 [];
  check "warnings only" 2 [ warn; note ];
  check "errors dominate" 1 [ warn; err ];
  Alcotest.(check int) "fail-on error ignores warnings" 0
    (Diffreport.gate ~fail_on:`Error [ warn; note ]);
  Alcotest.(check int) "fail-on error sees errors" 1
    (Diffreport.gate ~fail_on:`Error [ warn; err ]);
  Alcotest.(check int) "fail-on never" 0 (Diffreport.gate ~fail_on:`Never [ err ]);
  Alcotest.(check bool) "violations are errors" true
    (Diffreport.is_error_code (Report.code_of_restriction Report.P1))

(* -- coverage ------------------------------------------------------------------ *)

let test_coverage name () =
  let a = Driver.analyze_file (find_system name) in
  let cov = a.Driver.coverage in
  let r = a.Driver.report in
  Alcotest.(check int) "warnings counted" (List.length r.Report.warnings)
    cov.Coverage.cov_warnings;
  Alcotest.(check int) "errors counted" (List.length (Report.errors r))
    cov.Coverage.cov_errors;
  Alcotest.(check int) "control-only counted"
    (List.length (Report.control_deps r))
    cov.Coverage.cov_control_only;
  Alcotest.(check bool) "sites >= unmonitored" true
    (cov.Coverage.cov_read_sites
    >= cov.Coverage.cov_read_sites - cov.Coverage.cov_monitored_sites);
  Alcotest.(check bool) "monitored <= total" true
    (cov.Coverage.cov_monitored_sites <= cov.Coverage.cov_read_sites);
  let f = Coverage.monitored_fraction cov in
  Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0);
  (* per-region rows must sum to the totals *)
  let sum g = List.fold_left (fun acc rc -> acc + g rc) 0 cov.Coverage.cov_regions in
  Alcotest.(check int) "regions sum to sites" cov.Coverage.cov_read_sites
    (sum (fun rc -> rc.Coverage.rc_read_sites));
  Alcotest.(check int) "regions sum to warnings"
    (cov.Coverage.cov_read_sites - cov.Coverage.cov_monitored_sites)
    (sum (fun rc -> rc.Coverage.rc_unmonitored_sites));
  List.iter
    (fun rc ->
      Alcotest.(check bool) (rc.Coverage.rc_region ^ " assumed <= size") true
        (rc.Coverage.rc_assumed_bytes >= 0
        && rc.Coverage.rc_assumed_bytes <= rc.Coverage.rc_size))
    cov.Coverage.cov_regions;
  (* the headline integers ride along in report stats *)
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " in stats") true (List.mem_assoc key r.Report.stats))
    [ "noncore_read_sites"; "monitored_read_sites"; "control_only_deps" ];
  (* and the JSON embedding is well-formed *)
  (match Json.parse (Coverage.to_json cov) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "coverage JSON is not an object"
  | exception Json.Bad m -> Alcotest.fail ("bad coverage JSON: " ^ m))

let test_coverage_engine_invariance name () =
  let src = read_file (find_system name) in
  let cov engine = (Driver.analyze ~config:{ Config.default with engine } src).Driver.coverage in
  Alcotest.(check bool) "coverage engine-invariant" true
    (cov Config.Legacy = cov Config.Worklist)

let per_system f = List.map (fun n -> Alcotest.test_case n `Quick (f n)) system_files

let () =
  Alcotest.run "diagnostics"
    [ ("fingerprint engine invariance", per_system test_engine_invariance);
      ("fingerprint parallelism invariance", per_system test_parallelism_invariance);
      ("fingerprint cache invariance", per_system test_cache_invariance);
      ( "fingerprint reordering",
        [ Alcotest.test_case "function reorder + line shift" `Quick
            test_reorder_invariance ] );
      ("byte-identical reports", per_system test_byte_identical);
      ("canonical order", per_system test_canonical_order);
      ( "sarif",
        [ Alcotest.test_case "structure over all systems" `Quick test_sarif_structure ] );
      ( "findings files",
        [ Alcotest.test_case "roundtrip" `Quick test_findings_roundtrip ] );
      ("diff identical", per_system test_diff_identical);
      ( "diff variants",
        [ Alcotest.test_case "originals vs current" `Quick test_diff_originals;
          Alcotest.test_case "noncore variants all fixed" `Quick test_diff_noncore ] );
      ("gating", [ Alcotest.test_case "exit codes" `Quick test_gate ]);
      ("coverage", per_system test_coverage);
      ("coverage engine invariance", per_system test_coverage_engine_invariance) ]
