(* Differential test: the sparse worklist engine (Vfgraph) must produce
   the same report as the legacy dense fixpoint (Phase3) — identical
   violations, warnings and dependency classifications — on every subject
   system and synthetic program, under every Config toggle combination.

   Deliberately NOT compared (see vfgraph.mli): propagation-trace parents
   and the per-warning context string, both of which depend on visit
   order that neither engine guarantees. *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* order-insensitive keys for each report component *)

let violation_keys (r : Report.t) =
  List.sort compare
    (List.map
       (fun (v : Report.violation) ->
         (Fmt.str "%a" Report.pp_restriction v.Report.v_rule, v.Report.v_func,
          Fmt.str "%a" Minic.Loc.pp v.Report.v_loc))
       r.Report.violations)

let warning_keys (r : Report.t) =
  List.sort compare
    (List.map
       (fun (w : Report.warning) ->
         (w.Report.w_func, w.Report.w_region, Fmt.str "%a" Minic.Loc.pp w.Report.w_loc))
       r.Report.warnings)

let dependency_keys (r : Report.t) =
  List.sort compare
    (List.map
       (fun (d : Report.dependency) ->
         (Fmt.str "%a" Report.pp_dep_kind d.Report.d_kind, d.Report.d_sink,
          d.Report.d_func, Fmt.str "%a" Minic.Loc.pp d.Report.d_loc))
       r.Report.dependencies)

let triple_list = Alcotest.(list (triple string string string))
let quad_list = Alcotest.(list (pair (pair string string) (pair string string)))

let quad (a, b, c, d) = ((a, b), (c, d))

let check_equiv label (config : Config.t) (src : string) =
  let legacy =
    (Driver.analyze ~config:{ config with engine = Config.Legacy } src).Driver.report
  in
  let worklist =
    (Driver.analyze ~config:{ config with engine = Config.Worklist } src).Driver.report
  in
  Alcotest.check triple_list (label ^ ": violations") (violation_keys legacy)
    (violation_keys worklist);
  Alcotest.check triple_list (label ^ ": warnings") (warning_keys legacy)
    (warning_keys worklist);
  Alcotest.check quad_list (label ^ ": dependencies")
    (List.map quad (dependency_keys legacy))
    (List.map quad (dependency_keys worklist));
  (* pair discovery must also agree: same (function, context) universe *)
  Alcotest.(check int)
    (label ^ ": analyzed pairs")
    (List.assoc "phase3_contexts" legacy.Report.stats)
    (List.assoc "phase3_contexts" worklist.Report.stats)

(* the Config toggle grid: every combination of the analysis dimensions *)
let toggle_grid =
  List.concat_map
    (fun control_deps ->
      List.concat_map
        (fun context_sensitive ->
          List.map
            (fun field_sensitive ->
              ( Fmt.str "cd=%b ctx=%b field=%b" control_deps context_sensitive
                  field_sensitive,
                { Config.default with control_deps; context_sensitive; field_sensitive } ))
            [ true; false ])
        [ true; false ])
    [ true; false ]

let system_files =
  [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c"; "figure2.c"; "car_follow.c" ]

let test_system name () =
  let src = read_file (find_system name) in
  List.iter (fun (tlabel, config) -> check_equiv (name ^ " " ^ tlabel) config src)
    toggle_grid

let test_synth_scale () =
  let src = Synth.of_size 8 in
  List.iter (fun (tlabel, config) -> check_equiv ("synth8 " ^ tlabel) config src)
    toggle_grid

let test_synth_context_explosion () =
  let src = Synth.context_explosion ~depth:4 in
  List.iter
    (fun (tlabel, config) -> check_equiv ("ctx-explosion " ^ tlabel) config src)
    toggle_grid

let test_worklist_stats () =
  (* the worklist engine must expose its graph counters in the report *)
  let config = { Config.default with engine = Config.Worklist } in
  let r = (Driver.analyze ~config (Synth.of_size 8)).Driver.report in
  List.iter
    (fun key ->
      if not (List.mem_assoc key r.Report.stats) then
        Alcotest.failf "missing %s in worklist report stats" key)
    [ "vf_entities"; "vf_contexts"; "vf_edges"; "vf_pops" ];
  Alcotest.(check bool) "edges counted" true (List.assoc "vf_edges" r.Report.stats > 0)

let test_telemetry_invariance () =
  (* telemetry must be observationally invisible: the report is
     structurally identical with the subsystem off (default) and on, and
     nothing at all is recorded while it is off *)
  let src = read_file (find_system "figure2.c") in
  let config = { Config.default with engine = Config.Worklist } in
  let run () = Driver.analyze ~config src in
  Telemetry.set_enabled false;
  Telemetry.reset ();
  let off = run () in
  Alcotest.(check int) "no spans while off" 0 (List.length (Telemetry.spans ()));
  Alcotest.(check bool) "no counts while off" true
    (List.for_all (fun (_, v) -> v = 0) (Telemetry.counters ()));
  Alcotest.(check bool) "no histogram observations while off" true
    (List.for_all
       (fun (h : Telemetry.hist_view) -> h.Telemetry.hv_count = 0)
       (Telemetry.histograms ()));
  Telemetry.set_enabled true;
  Telemetry.reset ();
  let on = run () in
  let spans = Telemetry.spans () in
  let counters = Telemetry.counters () in
  let hists = Telemetry.histograms () in
  Telemetry.set_enabled false;
  Telemetry.reset ();
  Alcotest.(check bool) "reports identical on/off" true
    (off.Driver.report = on.Driver.report);
  (* the obligation ledger is collected unconditionally and must be
     byte-identical modulo wall-clock timings — it never influences (or
     is influenced by) the telemetry switch *)
  let norm (e : Ledger.entry) = { e with Ledger.l_ns = 0 } in
  Alcotest.(check bool) "ledgers identical on/off (modulo timing)" true
    (List.map norm off.Driver.ledger = List.map norm on.Driver.ledger);
  Alcotest.(check bool) "ledger non-empty" true (off.Driver.ledger <> []);
  (* histograms observed while on: pair blocks are always built *)
  let hist_count name =
    match
      List.find_opt (fun (h : Telemetry.hist_view) -> h.Telemetry.hv_name = name) hists
    with
    | Some h -> h.Telemetry.hv_count
    | None -> 0
  in
  Alcotest.(check bool) "pair.build histogram populated" true
    (hist_count "pair.build" > 0);
  Alcotest.(check bool) "spans recorded while on" true (spans <> []);
  let names = List.map (fun (s : Telemetry.span_record) -> s.Telemetry.s_name) spans in
  List.iter
    (fun phase ->
      if not (List.mem phase names) then Alcotest.failf "missing %s span" phase)
    [ "analyze"; "prepare"; "parse"; "phase1"; "phase2"; "pointsto"; "phase3";
      "pair.build"; "phase3.drain" ];
  (* every non-root parent id must name a recorded span *)
  let ids = List.map (fun (s : Telemetry.span_record) -> s.Telemetry.s_id) spans in
  List.iter
    (fun (s : Telemetry.span_record) ->
      if s.Telemetry.s_parent <> -1 && not (List.mem s.Telemetry.s_parent ids) then
        Alcotest.failf "span %s has dangling parent" s.Telemetry.s_name)
    spans;
  Alcotest.(check bool) "worklist counters moved" true
    (List.assoc "vf.edges_built" counters > 0
    && List.assoc "vf.worklist_pops" counters > 0)

let test_parallel_driver () =
  (* analyze_files_par must agree with sequential analyze_file, in order *)
  let files = List.map find_system [ "ip_controller.c"; "generic_simplex.c"; "car_follow.c" ] in
  let seq = List.map (fun f -> (Driver.analyze_file f).Driver.report) files in
  let par = List.map (fun (a : Driver.analysis) -> a.Driver.report)
      (Driver.analyze_files_par files) in
  List.iteri
    (fun i (rs, rp) ->
      let label = Fmt.str "par[%d]" i in
      Alcotest.check triple_list (label ^ ": warnings") (warning_keys rs) (warning_keys rp);
      Alcotest.check quad_list (label ^ ": dependencies")
        (List.map quad (dependency_keys rs))
        (List.map quad (dependency_keys rp)))
    (List.combine seq par)

let () =
  Alcotest.run "engine_equiv"
    [ ( "systems",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_system name))
          system_files );
      ( "synthetic",
        [ Alcotest.test_case "of_size 8" `Quick test_synth_scale;
          Alcotest.test_case "context_explosion 4" `Quick test_synth_context_explosion ] );
      ( "engine plumbing",
        [ Alcotest.test_case "worklist stats" `Quick test_worklist_stats;
          Alcotest.test_case "telemetry invariance" `Quick test_telemetry_invariance;
          Alcotest.test_case "parallel driver" `Quick test_parallel_driver ] ) ]
