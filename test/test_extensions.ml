(* Higher-level analysis properties and paper-extension features:
   - §3.4.2 fine-grained non-core encapsulation assumptions;
   - synthetic-program properties (monotonicity of monitoring, exact
     warning counts, determinism, staged-pipeline consistency);
   - value-flow-graph export well-formedness. *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

(* -- §3.4.2: fine-grained encapsulation assumptions ----------------------- *)

(* Figure 2 with the extra annotation the paper discusses: declaring
   `feedback` core within `decision` (and callees) removes the feedback
   warnings there — the developer takes responsibility for the absence
   of synchronization/compatibility errors. *)
let test_encapsulation_assumption () =
  let src =
    {|
struct SHMData { double control; double track; double angle; };
typedef struct SHMData SHMData;
SHMData *noncoreCtrl;
SHMData *feedback;
extern void sendControl(double out);

void initComm()
/*** SafeFlow Annotation shminit ***/
{
  void *s; int id;
  id = shmget(9000, 2 * sizeof(SHMData), 438);
  s = shmat(id, (void *) 0, 0);
  feedback = (SHMData *) s;
  noncoreCtrl = feedback + 1;
  /*** SafeFlow Annotation
       assume(shmvar(feedback, sizeof(SHMData)))
       assume(shmvar(noncoreCtrl, sizeof(SHMData)))
       assume(noncore(feedback))
       assume(noncore(noncoreCtrl)) ***/
}

int checkSafety(SHMData *f, SHMData *nc)
{
  double t = f->track;
  double a = f->angle;
  double c = nc->control;
  if (c > 5.0 || c < -5.0) { return 0; }
  if (t * t + 4.0 * a * a > 1.0) { return 0; }
  return 1;
}

double decision(SHMData *f, double safeControl, SHMData *nc)
/*** SafeFlow Annotation
     assume(core(noncoreCtrl, 0, sizeof(SHMData)))
     assume(core(feedback, 0, sizeof(SHMData))) ***/
{
  if (checkSafety(f, nc)) {
    return nc->control;
  }
  return safeControl;
}

int main()
{
  double safeControl = 0.0;
  double output;
  initComm();
  output = decision(feedback, safeControl, noncoreCtrl);
  /*** SafeFlow Annotation assert(safe(output)) ***/
  sendControl(output);
  return 0;
}
|}
  in
  let r = (Driver.analyze src).Driver.report in
  (* both regions assumed core inside decision (and checkSafety via the
     recursive scope): no warnings, no errors *)
  Alcotest.(check int) "no warnings under the encapsulation assumption" 0
    (List.length r.Report.warnings);
  Alcotest.(check int) "no errors" 0 (List.length (Report.errors r))

(* -- Synth properties ------------------------------------------------------- *)

let test_synth_warning_count_exact () =
  (* unmonitored workers read one non-core value each: warnings = count *)
  List.iter
    (fun (workers, frac) ->
      let src =
        Synth.generate { Synth.default with workers; monitored_fraction = frac }
      in
      let r = (Driver.analyze src).Driver.report in
      let monitored = int_of_float (frac *. float_of_int workers) in
      Alcotest.(check int)
        (Fmt.str "workers=%d frac=%.2f warnings" workers frac)
        (workers - monitored)
        (List.length r.Report.warnings))
    [ (4, 0.5); (8, 0.25); (10, 1.0); (6, 0.0) ]

let prop_more_monitoring_fewer_warnings =
  let gen = QCheck.Gen.(pair (int_range 2 20) (pair (float_range 0.0 1.0) (float_range 0.0 1.0))) in
  let arb = QCheck.make ~print:(fun (w, (a, b)) -> Fmt.str "w=%d a=%.2f b=%.2f" w a b) gen in
  QCheck.Test.make ~name:"monitoring more workers never adds warnings" ~count:30 arb
    (fun (workers, (f1, f2)) ->
      let lo = Float.min f1 f2 and hi = Float.max f1 f2 in
      let warn f =
        let src = Synth.generate { Synth.default with workers; monitored_fraction = f } in
        List.length (Driver.analyze src).Driver.report.Report.warnings
      in
      warn hi <= warn lo)

let prop_synth_clean_of_violations =
  let gen = QCheck.Gen.(pair (int_range 1 24) (int_range 1 4)) in
  let arb = QCheck.make ~print:(fun (w, d) -> Fmt.str "w=%d d=%d" w d) gen in
  QCheck.Test.make ~name:"synthetic programs: no restriction violations" ~count:25 arb
    (fun (workers, chain_depth) ->
      let src = Synth.generate { Synth.default with workers; chain_depth } in
      let r = (Driver.analyze src).Driver.report in
      r.Report.violations = [])

let test_analysis_deterministic () =
  let src = Synth.of_size 12 in
  let summary () =
    let r = (Driver.analyze src).Driver.report in
    ( List.length r.Report.warnings,
      List.length (Report.errors r),
      List.length (Report.control_deps r),
      List.map (fun w -> Fmt.str "%a" Minic.Loc.pp w.Report.w_loc) r.Report.warnings
      |> List.sort compare )
  in
  let a = summary () and b = summary () in
  Alcotest.(check bool) "two runs identical" true (a = b)

(* the staged pipeline and the one-shot driver agree *)
let test_staged_pipeline_consistency () =
  let path = find_system "ip_controller.c" in
  let one_shot = (Driver.analyze_file path).Driver.report in
  let p = Driver.prepare_file path in
  let shm = Driver.stage_shm p in
  let p1 = Driver.stage_phase1 p shm in
  let absint = Driver.stage_absint p in
  let ph2 = Driver.stage_phase2 ?absint p p1 in
  let pts = Driver.stage_pointsto p in
  let ph3 = Driver.stage_phase3 ?absint p shm p1 pts in
  Alcotest.(check int) "violations agree" (List.length one_shot.Report.violations)
    (List.length ph2.Phase2.violations);
  Alcotest.(check int) "warnings agree" (List.length one_shot.Report.warnings)
    (List.length ph3.Phase3.warnings);
  Alcotest.(check int) "dependencies agree"
    (List.length one_shot.Report.dependencies)
    (List.length ph3.Phase3.dependencies)

(* -- VFG export --------------------------------------------------------------- *)

let balanced_braces s =
  let depth = ref 0 in
  String.iter
    (fun c -> if c = '{' then incr depth else if c = '}' then decr depth)
    s;
  !depth = 0

let test_vfg_wellformed_for_all_systems () =
  List.iter
    (fun name ->
      let a = Driver.analyze_file (find_system name) in
      let dot = Vfg.to_dot a.Driver.phase3 in
      Alcotest.(check bool) (name ^ ": digraph") true
        (Astring.String.is_prefix ~affix:"digraph" dot);
      Alcotest.(check bool) (name ^ ": balanced") true (balanced_braces dot);
      let cdot = Vfg.control_to_dot a.Driver.phase3 in
      Alcotest.(check bool) (name ^ ": control graph balanced") true (balanced_braces cdot))
    [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c" ]

(* traces always start at a non-core source *)
let test_error_traces_rooted_at_sources () =
  List.iter
    (fun name ->
      let r = (Driver.analyze_file (find_system name)).Driver.report in
      List.iter
        (fun d ->
          match d.Report.d_trace with
          | first :: _ ->
            Alcotest.(check bool)
              (name ^ ": trace starts at a non-core source")
              true
              (Astring.String.is_infix ~affix:"non-core" first)
          | [] -> Alcotest.fail "empty trace")
        (Report.errors r))
    [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c" ]

(* -- Summary engine (§3.3's ESP-style optimization) ---------------------------- *)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let engines_agree name src =
  let exact = (Driver.analyze src).Driver.report in
  let summary, _ = Driver.analyze_summary src in
  let locs r = List.map (fun (w : Report.warning) -> w.w_loc) r.Report.warnings |> List.sort compare in
  Alcotest.(check int) (name ^ ": warning count") (List.length exact.Report.warnings)
    (List.length summary.Report.warnings);
  Alcotest.(check bool) (name ^ ": warning sites equal") true (locs exact = locs summary);
  let err_locs r = List.map (fun d -> d.Report.d_loc) (Report.errors r) |> List.sort compare in
  Alcotest.(check bool) (name ^ ": error sinks equal") true
    (err_locs exact = err_locs summary)

let test_summary_engine_agrees_on_systems () =
  List.iter
    (fun name -> engines_agree name (read_file (find_system name)))
    [ "figure2.c"; "ip_controller.c"; "generic_simplex.c"; "double_ip.c"; "car_follow.c" ]

let test_summary_engine_context_explosion () =
  (* the exponential workload: identical findings, single data error *)
  let src = Synth.context_explosion ~depth:6 in
  engines_agree "explosion-6" src;
  let summary, s = Driver.analyze_summary src in
  Alcotest.(check int) "one error" 1 (List.length (Report.errors summary));
  Alcotest.(check bool) "few passes" true (s.Summary.passes <= 6)

let prop_summary_agrees_on_synth =
  let gen = QCheck.Gen.(pair (int_range 2 12) (oneofl [ 0.0; 0.25; 0.5; 1.0 ])) in
  let arb = QCheck.make ~print:(fun (w, f) -> Fmt.str "w=%d f=%.2f" w f) gen in
  QCheck.Test.make ~name:"summary engine agrees on synthetic programs" ~count:20 arb
    (fun (workers, monitored_fraction) ->
      let src =
        Synth.generate { Synth.default with workers; monitored_fraction; chain_depth = 2 }
      in
      let exact = (Driver.analyze src).Driver.report in
      let summary, _ = Driver.analyze_summary src in
      List.length exact.Report.warnings = List.length summary.Report.warnings
      && List.length (Report.errors exact) = List.length (Report.errors summary))

(* -- Car-following demo system (message-passing extension §3.4.3) ------------- *)

let test_car_follow_system () =
  let a = Driver.analyze_file (find_system "car_follow.c") in
  let r = a.Driver.report in
  Alcotest.(check int) "regions" 3 (List.length r.Report.regions);
  Alcotest.(check int) "violations" 0 (List.length r.Report.violations);
  Alcotest.(check int) "errors" 2 (List.length (Report.errors r));
  Alcotest.(check int) "warnings" 3 (List.length r.Report.warnings);
  (* error 1: the raw recv value reaching the acceleration *)
  Alcotest.(check bool) "recv error present" true
    (List.exists
       (fun d ->
         Astring.String.is_infix ~affix:"accel" d.Report.d_sink
         && List.exists (Astring.String.is_infix ~affix:"recv") d.Report.d_trace)
       (Report.errors r));
  (* error 2: the kill pid *)
  Alcotest.(check bool) "kill error present" true
    (List.exists
       (fun d -> Astring.String.is_infix ~affix:"kill" d.Report.d_sink)
       (Report.errors r));
  (* the monitored telematics and planner paths are clean: no error
     mentions checkSpeedCommand or checkPlannerCmd *)
  List.iter
    (fun d ->
      List.iter
        (fun step ->
          Alcotest.(check bool) "monitored fns not in traces" false
            (Astring.String.is_infix ~affix:"checkSpeedCommand" step
            || Astring.String.is_infix ~affix:"checkPlannerCmd" step))
        d.Report.d_trace)
    (Report.errors r);
  (* InitCheck lays out the three regions disjointly *)
  let layout = Shm.run_init_check a.Driver.prepared.Driver.ir a.Driver.shm in
  Alcotest.(check int) "layout" 3 (List.length layout)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [ ( "encapsulation",
        [ Alcotest.test_case "fine-grained assume (§3.4.2)" `Quick
            test_encapsulation_assumption ] );
      ( "synth",
        [ Alcotest.test_case "exact warning counts" `Quick test_synth_warning_count_exact;
          Alcotest.test_case "determinism" `Quick test_analysis_deterministic;
          qt prop_more_monitoring_fewer_warnings;
          qt prop_synth_clean_of_violations ] );
      ( "pipeline",
        [ Alcotest.test_case "staged = one-shot" `Quick test_staged_pipeline_consistency ] );
      ( "vfg",
        [ Alcotest.test_case "well-formed dot" `Quick test_vfg_wellformed_for_all_systems;
          Alcotest.test_case "traces rooted" `Quick test_error_traces_rooted_at_sources ] );
      ( "car-follow",
        [ Alcotest.test_case "message-passing demo system" `Quick test_car_follow_system ] );
      ( "summary-engine",
        [ Alcotest.test_case "agrees on systems" `Quick test_summary_engine_agrees_on_systems;
          Alcotest.test_case "context explosion" `Quick test_summary_engine_context_explosion;
          qt prop_summary_agrees_on_synth ] ) ]
