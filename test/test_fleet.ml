(* Fleet-mode tests:

   - the shared disk cache under concurrent hammering from several
     processes AND from several domains of one process: no corrupt
     entries, no wrong values, every key readable afterwards;
   - cross-system hit attribution via Cache.with_origin;
   - fleet report identity: a sharded (2 processes x 2 domains) run over
     a shared cache — cold and warm — is byte-identical to a sequential
     no-cache baseline, with cross-system hits observed on the way.

   Ordering matters: the OCaml 5 runtime forbids Unix.fork in any
   process that has ever spawned a domain, so every fork-based test
   (including Fleet.run with jobs or domains, which forks workers) runs
   before the in-process multi-domain test, which is last. *)

open Safeflow

let ns = "fleettest"

let mkdtemp prefix =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let d = Filename.concat base (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) k) in
    if Sys.file_exists d then go (k + 1)
    else begin
      try
        Sys.mkdir d 0o700;
        d
      with Sys_error _ -> go (k + 1)
    end
  in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec rm_rf d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f ->
        let p = Filename.concat d f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir d);
    Sys.rmdir d
  end

(* deterministic structured value per key, so any torn/mixed read is
   detected by ordinary equality *)
let value_of key : string * int * string list =
  (key, String.length key, List.init 8 (fun i -> key ^ "#" ^ string_of_int i))

let keys n =
  Array.init n (fun i -> Digest.to_hex (Digest.string (Printf.sprintf "fleet-key-%d" i)))

(* miss -> store, hit -> verify; [rot] decorrelates the visit order per
   worker so writers genuinely race on the same keys *)
let hammer (c : Cache.t) (ks : string array) ~rot =
  let n = Array.length ks in
  for round = 0 to 1 do
    ignore round;
    for i = 0 to n - 1 do
      let key = ks.((i + rot) mod n) in
      match (Cache.find c ~ns ~key : (string * int * string list) option) with
      | Some v -> if v <> value_of key then failwith ("wrong value for " ^ key)
      | None -> Cache.store c ~ns ~key (value_of key)
    done
  done

let corrupt_count c =
  List.fold_left (fun acc (_, (s : Cache.ns_stats)) -> acc + s.Cache.corrupt) 0
    (Cache.detailed_stats c)

(* -- multi-process ----------------------------------------------------------- *)

let test_multiprocess () =
  let dir = mkdtemp "sf-fleet-mp" in
  let ks = keys 200 in
  flush stdout;
  flush stderr;
  let pids =
    List.init 4 (fun p ->
        match Unix.fork () with
        | 0 ->
          let status =
            try
              let c = Cache.create ~dir () in
              hammer c ks ~rot:(p * 37);
              (* everything this process touched must now read back *)
              Array.iter
                (fun key ->
                  match (Cache.find c ~ns ~key : (string * int * string list) option) with
                  | Some v -> if v <> value_of key then failwith "verify"
                  | None -> failwith "lost key")
                ks;
              if corrupt_count c > 0 then failwith "corrupt entries";
              0
            with _ -> 1
          in
          Unix._exit status
        | pid -> pid)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "worker process failed (wrong value, lost key or corrupt)")
    pids;
  (* a fresh process-equivalent reader sees every entry, uncorrupted *)
  let c = Cache.create ~dir () in
  Array.iter
    (fun key ->
      match (Cache.find c ~ns ~key : (string * int * string list) option) with
      | Some v -> Alcotest.(check bool) "value intact" true (v = value_of key)
      | None -> Alcotest.fail ("missing key " ^ key))
    ks;
  Alcotest.(check int) "no corrupt entries" 0 (corrupt_count c);
  rm_rf dir

(* -- cross-origin accounting -------------------------------------------------- *)

let test_cross_origin () =
  let c = Cache.create () in
  Cache.with_origin "sysA" (fun () -> Cache.store c ~ns ~key:"k1" 42);
  let v = Cache.with_origin "sysA" (fun () -> Cache.find c ~ns ~key:"k1") in
  Alcotest.(check (option int)) "same-origin hit" (Some 42) v;
  Alcotest.(check int) "same-origin hit is not cross" 0 (Cache.cross_hits c);
  let v = Cache.with_origin "sysB" (fun () -> Cache.find c ~ns ~key:"k1") in
  Alcotest.(check (option int)) "cross-origin hit" (Some 42) v;
  Alcotest.(check int) "cross-origin hit counted" 1 (Cache.cross_hits c);
  (* empty origin (plain non-fleet runs) never counts cross *)
  let v : int option = Cache.find c ~ns ~key:"k1" in
  Alcotest.(check (option int)) "no-origin hit" (Some 42) v;
  Alcotest.(check int) "no-origin hit not cross" 1 (Cache.cross_hits c)

(* -- member collection -------------------------------------------------------- *)

let test_members () =
  let dir = mkdtemp "sf-fleet-members" in
  let write name content =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "b.c" "x";
  write "a.c" "y";
  write "notes.txt" "z";
  Alcotest.(check (list string))
    "dir members sorted, .c only"
    [ Filename.concat dir "a.c"; Filename.concat dir "b.c" ]
    (Fleet.members_of_dir dir);
  write "fleet.manifest" "# comment\na.c\n\nb.c\n/abs/other.c\n";
  Alcotest.(check (list string))
    "manifest members resolved"
    [ Filename.concat dir "a.c"; Filename.concat dir "b.c"; "/abs/other.c" ]
    (Fleet.members_of_manifest (Filename.concat dir "fleet.manifest"));
  rm_rf dir

(* -- fleet identity ------------------------------------------------------------ *)

let test_fleet_identity () =
  let fp =
    { Synth.fleet_n = 12; fleet_workers = 4; fleet_overlap = 0.5; fleet_dup = 0.25 }
  in
  let src_dir = mkdtemp "sf-fleet-src" in
  let cache_dir = mkdtemp "sf-fleet-cache" in
  let paths =
    List.map
      (fun (name, src) ->
        let path = Filename.concat src_dir name in
        let oc = open_out_bin path in
        output_string oc src;
        close_out oc;
        path)
      (Synth.fleet ~seed:7 fp)
  in
  let reports (r : Fleet.result) =
    List.map (fun m -> m.Fleet.mr_report) r.Fleet.f_results
  in
  let base = Fleet.run paths in
  let cold = Fleet.run ~cache_dir ~jobs:2 ~shard_domains:2 paths in
  let warm = Fleet.run ~cache_dir ~jobs:2 ~shard_domains:2 paths in
  Alcotest.(check int) "all members analyzed" 12 base.Fleet.f_systems;
  Alcotest.(check (list string))
    "member order preserved" paths
    (List.map (fun m -> m.Fleet.mr_path) cold.Fleet.f_results);
  Alcotest.(check (list string)) "cold sharded run byte-identical to baseline"
    (reports base) (reports cold);
  Alcotest.(check (list string)) "warm sharded run byte-identical to baseline"
    (reports base) (reports warm);
  Alcotest.(check bool) "cold run sees cross-system hits" true
    (cold.Fleet.f_cache.Fleet.ct_cross > 0);
  Alcotest.(check bool) "warm run hits the cache" true
    (warm.Fleet.f_cache.Fleet.ct_hits > 0);
  Alcotest.(check int) "no corrupt entries" 0
    (cold.Fleet.f_cache.Fleet.ct_corrupt + warm.Fleet.f_cache.Fleet.ct_corrupt);
  Alcotest.(check int) "no stale entries" 0
    (cold.Fleet.f_cache.Fleet.ct_stale + warm.Fleet.f_cache.Fleet.ct_stale);
  (* findings are attributed to real member paths, not the normalized label *)
  List.iter
    (fun (m : Fleet.member_result) ->
      List.iter
        (fun (e : Diffreport.entry) ->
          Alcotest.(check bool)
            ("finding located in " ^ m.Fleet.mr_path)
            true
            (Astring.String.is_prefix ~affix:m.Fleet.mr_path e.Diffreport.e_where))
        m.Fleet.mr_entries)
    cold.Fleet.f_results;
  rm_rf cache_dir;
  rm_rf src_dir

(* -- fleet observability -------------------------------------------------------- *)

(* A forked observed run (telemetry + events on) must produce a coherent
   merged view — worker snapshot sums matching fleet totals, events for
   every member, a multi-pid trace — while leaving reports byte-identical
   to an unobserved run.  Forks, so must run before the multidomain
   test. *)
let test_fleet_observability () =
  let fp =
    { Synth.fleet_n = 8; fleet_workers = 4; fleet_overlap = 0.5; fleet_dup = 0.25 }
  in
  let src_dir = mkdtemp "sf-fleet-obs-src" in
  let paths =
    List.map
      (fun (name, src) ->
        let path = Filename.concat src_dir name in
        let oc = open_out_bin path in
        output_string oc src;
        close_out oc;
        path)
      (Synth.fleet ~seed:11 fp)
  in
  let reports (r : Fleet.result) =
    List.map (fun m -> m.Fleet.mr_report) r.Fleet.f_results
  in
  (* plain run: no telemetry, no events, no cache *)
  let plain = Fleet.run ~jobs:2 ~shard_domains:2 paths in
  (* observed run *)
  Telemetry.set_enabled true;
  Telemetry.reset ();
  let cache_dir = mkdtemp "sf-fleet-obs-cache" in
  let events = ref [] in
  let parent_cross_before = Telemetry.value (Telemetry.counter "cache.cross_hits") in
  let observed =
    Fleet.run ~cache_dir ~jobs:2 ~shard_domains:2
      ~on_event:(fun line -> events := line :: !events)
      paths
  in
  let stats_path = Filename.temp_file "sf-obs-stats" ".json" in
  let trace_path = Filename.temp_file "sf-obs-trace" ".json" in
  Telemetry.write_stats_json stats_path;
  Telemetry.write_chrome_trace trace_path;
  let stats = Jsonlite.parse_exn (read_file stats_path) in
  let trace = Jsonlite.parse_exn (read_file trace_path) in
  Sys.remove stats_path;
  Sys.remove trace_path;
  let merged_cross = Telemetry.value (Telemetry.counter "cache.cross_hits") in
  Telemetry.set_enabled false;
  Telemetry.reset ();
  (* observability is report-neutral *)
  Alcotest.(check (list string)) "observed reports byte-identical to plain run"
    (reports plain) (reports observed);
  (* stats JSON: schema v4, one view per worker, consistent sums *)
  Alcotest.(check (option string)) "schema v4" (Some "safeflow-telemetry/4")
    (Option.bind (Jsonlite.member "schema" stats) Jsonlite.to_string);
  let workers =
    Option.get (Option.bind (Jsonlite.member "workers" stats) Jsonlite.to_list)
  in
  Alcotest.(check int) "one snapshot per forked worker" 2 (List.length workers);
  let counter_in j name =
    Option.value ~default:0
      (Option.bind (Jsonlite.member "counters" j)
         (fun c -> Option.bind (Jsonlite.member name c) Jsonlite.to_int))
  in
  let merged name = counter_in stats name in
  let worker_sum name =
    List.fold_left (fun acc w -> acc + counter_in w name) 0 workers
  in
  Alcotest.(check int) "sum of worker member counts = fleet total" 8
    (worker_sum "fleet.members");
  Alcotest.(check int) "merged members counter = worker sum" (worker_sum "fleet.members")
    (merged "fleet.members");
  List.iter
    (fun ns ->
      let hits = "cache." ^ ns ^ ".hits" and misses = "cache." ^ ns ^ ".misses" in
      Alcotest.(check int)
        ("merged " ^ hits ^ "+" ^ misses ^ " = sum over workers")
        (worker_sum hits + worker_sum misses)
        (merged hits + merged misses))
    [ "prepared"; "phase1"; "phase2"; "phase3"; "pair" ];
  Alcotest.(check int) "merged cross_hits = sum over workers"
    (worker_sum "cache.cross_hits") (merged "cache.cross_hits");
  Alcotest.(check bool) "merged cross_hits above parent-only value" true
    (merged_cross > parent_cross_before);
  Alcotest.(check int) "telemetry cross_hits agrees with fleet result"
    observed.Fleet.f_cache.Fleet.ct_cross merged_cross;
  (* float gauge replaced the truncated counter *)
  let gauges = Option.bind (Jsonlite.member "gauges" stats) Jsonlite.to_obj in
  (match Option.bind gauges (fun g -> List.assoc_opt "fleet.analyses_per_sec" g) with
  | Some (Jsonlite.Num aps) ->
    Alcotest.(check bool) "analyses_per_sec is a positive float" true (aps > 0.0)
  | _ -> Alcotest.fail "fleet.analyses_per_sec gauge missing");
  Alcotest.(check (option int)) "truncated counter gone" None
    (Option.bind (Jsonlite.member "counters" stats) (fun c ->
         Option.map (fun _ -> 0) (Jsonlite.member "fleet.analyses_per_sec" c)));
  (* chrome trace: spans from parent and both workers *)
  let pids =
    Option.get (Option.bind (Jsonlite.member "traceEvents" trace) Jsonlite.to_list)
    |> List.filter_map (fun e ->
           if Option.bind (Jsonlite.member "ph" e) Jsonlite.to_string = Some "X" then
             Option.bind (Jsonlite.member "pid" e) Jsonlite.to_int
           else None)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "trace spans from >= 2 distinct pids" true
    (List.length pids >= 2);
  (* event stream: one start and one done per member, fleet framing *)
  let events = List.rev !events in
  let ev_of line =
    Option.bind (Jsonlite.member "ev" (Jsonlite.parse_exn line)) Jsonlite.to_string
  in
  let count e = List.length (List.filter (fun l -> ev_of l = Some e) events) in
  Alcotest.(check int) "member_start per member" 8 (count "member_start");
  Alcotest.(check int) "member_done per member" 8 (count "member_done");
  Alcotest.(check int) "worker lifecycle" 2 (count "worker_start");
  Alcotest.(check (option string)) "fleet_start first" (Some "fleet_start")
    (ev_of (List.hd events));
  Alcotest.(check (option string)) "fleet_done last" (Some "fleet_done")
    (ev_of (List.nth events (List.length events - 1)));
  rm_rf cache_dir;
  rm_rf src_dir

(* -- multi-domain (must stay last: spawning a domain forbids fork) ------------ *)

let test_multidomain () =
  let dir = mkdtemp "sf-fleet-md" in
  let c = Cache.create ~dir () in
  let ks = keys 100 in
  let results = Array.make 4 true in
  let worker d () = try hammer c ks ~rot:(d * 13) with _ -> results.(d) <- false in
  let doms = List.init 3 (fun d -> Domain.spawn (worker (d + 1))) in
  worker 0 ();
  List.iter Domain.join doms;
  Array.iteri
    (fun d ok -> Alcotest.(check bool) (Printf.sprintf "domain %d clean" d) true ok)
    results;
  Array.iter
    (fun key ->
      match (Cache.find c ~ns ~key : (string * int * string list) option) with
      | Some v -> Alcotest.(check bool) "value intact" true (v = value_of key)
      | None -> Alcotest.fail ("missing key " ^ key))
    ks;
  Alcotest.(check int) "no corrupt entries" 0 (corrupt_count c);
  rm_rf dir

let () =
  Alcotest.run "fleet"
    [ ( "multiprocess",
        [ Alcotest.test_case "4 processes hammer one disk cache" `Quick test_multiprocess ] );
      ( "fleet",
        [ Alcotest.test_case "cross-origin hit accounting" `Quick test_cross_origin;
          Alcotest.test_case "member collection (dir, manifest)" `Quick test_members;
          Alcotest.test_case "sharded+cached reports identical to baseline" `Quick
            test_fleet_identity;
          Alcotest.test_case "observed run: merged telemetry, events, neutral reports"
            `Quick test_fleet_observability ] );
      ( "multidomain",
        [ Alcotest.test_case "4 domains hammer one disk cache" `Quick test_multidomain ] )
    ]
