(* End-to-end tests for the content-addressed incremental cache and the
   parallel builders: reports must be structurally identical across
   {no cache, cold, warm, one-function edit} × {legacy, worklist}; the
   on-disk tier must survive a round trip through a fresh process-level
   cache object and silently recompute corrupt entries; the parallel
   pair builder and Driver.analyze_files_par must agree with sequential
   analysis in input order. *)

open Safeflow

let systems =
  [ "car_follow.c"; "double_ip.c"; "figure2.c"; "generic_simplex.c";
    "ip_controller.c" ]

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let engines = [ ("legacy", Config.Legacy); ("worklist", Config.Worklist) ]

let config_of engine = { Config.default with engine }

let report ?cache config src = (Driver.analyze ~config ?cache src).Driver.report

let check_report label (expected : Report.t) (actual : Report.t) =
  Alcotest.(check bool) label true (expected = actual)

(* an uncalled one-function edit: every other function keeps its source
   location, so only the probe's dependent cache entries miss *)
let probe = "\ndouble __cache_probe(double x) { return x * 2.0; }\n"

let test_warm_identity () =
  List.iter
    (fun sys ->
      let src = read_file (find_system sys) in
      List.iter
        (fun (ename, engine) ->
          let config = config_of engine in
          let baseline = report config src in
          let c = Cache.create () in
          check_report (sys ^ " cold " ^ ename) baseline (report ~cache:c config src);
          check_report (sys ^ " warm " ^ ename) baseline (report ~cache:c config src))
        engines)
    systems

let test_dirty_identity () =
  List.iter
    (fun sys ->
      let src = read_file (find_system sys) in
      let dirty = src ^ probe in
      List.iter
        (fun (ename, engine) ->
          let config = config_of engine in
          let fresh = report config dirty in
          let c = Cache.create () in
          ignore (report ~cache:c config src);
          (* primed with the unedited source *)
          check_report (sys ^ " dirty " ^ ename) fresh (report ~cache:c config dirty))
        engines)
    systems

(* disk entries live under a generation subdirectory of the cache root *)
let rec clear_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then begin
          clear_dir p;
          Sys.rmdir p
        end
        else Sys.remove p)
      (Sys.readdir dir)

let rec entry_files dir =
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.concat_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then entry_files p else [ p ])

let test_disk_roundtrip () =
  let dir = "tmp_cache_disk" in
  clear_dir dir;
  let src = read_file (find_system "ip_controller.c") in
  let baseline = report Config.default src in
  ignore (report ~cache:(Cache.create ~dir ()) Config.default src);
  Alcotest.(check bool) "entries were written to disk" true
    (List.exists (fun f -> Filename.basename f <> "GENERATION") (entry_files dir));
  (* a brand-new cache object must read them back *)
  let c2 = Cache.create ~dir () in
  check_report "report after disk round trip" baseline
    (report ~cache:c2 Config.default src);
  let hits = List.fold_left (fun acc (_, (h, _)) -> acc + h) 0 (Cache.stats c2) in
  Alcotest.(check bool) "disk entries were hit" true (hits > 0)

let test_disk_corrupt () =
  let dir = "tmp_cache_corrupt" in
  clear_dir dir;
  let src = read_file (find_system "figure2.c") in
  let baseline = report Config.default src in
  ignore (report ~cache:(Cache.create ~dir ()) Config.default src);
  (* vandalize every entry: garbage in half, truncation to zero in half *)
  List.iteri
    (fun i f ->
      let oc = open_out_bin f in
      if i mod 2 = 0 then output_string oc "not a marshalled cache entry";
      close_out oc)
    (entry_files dir);
  check_report "corrupt entries are silently recomputed" baseline
    (report ~cache:(Cache.create ~dir ()) Config.default src)

let test_parallel_pairs () =
  List.iter
    (fun sys ->
      let src = read_file (find_system sys) in
      let seq = report (config_of Config.Worklist) src in
      let par_cfg =
        { Config.default with engine = Config.Worklist; pair_domains = 0 }
      in
      check_report (sys ^ " parallel build") seq (report par_cfg src);
      let c = Cache.create () in
      check_report (sys ^ " parallel cold") seq (report ~cache:c par_cfg src);
      check_report (sys ^ " parallel warm") seq (report ~cache:c par_cfg src))
    systems

let test_par_driver_deterministic () =
  let paths = List.map find_system systems in
  let seq = List.map (fun p -> (Driver.analyze_file p).Driver.report) paths in
  let par =
    List.map
      (fun (a : Driver.analysis) -> a.Driver.report)
      (Driver.analyze_files_par paths)
  in
  Alcotest.(check int) "one result per input" (List.length seq) (List.length par);
  List.iteri
    (fun i (s, p) -> check_report (Fmt.str "result %d matches input order" i) s p)
    (List.combine seq par)

let () =
  Alcotest.run "incremental"
    [ ( "cache",
        [ Alcotest.test_case "cold and warm reports identical" `Quick
            test_warm_identity;
          Alcotest.test_case "one-function edit reports identical" `Quick
            test_dirty_identity ] );
      ( "disk",
        [ Alcotest.test_case "round trip through a fresh cache" `Quick
            test_disk_roundtrip;
          Alcotest.test_case "corrupt entries recomputed" `Quick test_disk_corrupt ] );
      ( "parallel",
        [ Alcotest.test_case "parallel pair build identical" `Quick
            test_parallel_pairs;
          Alcotest.test_case "analyze_files_par deterministic" `Quick
            test_par_driver_deterministic ] ) ]
