(* Unit tests for the dense interner and hash-consed monitoring contexts
   backing the sparse phase-3 engine (lib/safeflow/intern.ml): dense ids
   are contiguous and stable, context interning canonicalizes, and the
   memoized union agrees with a reference implementation. *)

open Safeflow

let a lo hi = Assume.Aregion ("reg", lo, hi)
let b lo hi = Assume.Aregion ("buf", lo, hi)

let test_dense_ids () =
  let t = Intern.create 4 in
  let values = [ "alpha"; "beta"; "gamma"; "alpha"; "delta"; "beta" ] in
  let ids = List.map (Intern.intern t) values in
  Alcotest.(check (list int)) "first-sight ids are dense" [ 0; 1; 2; 0; 3; 1 ] ids;
  Alcotest.(check int) "length counts distinct values" 4 (Intern.length t);
  Alcotest.(check (list int)) "stable on re-intern" ids
    (List.map (Intern.intern t) values);
  List.iter2
    (fun v id -> Alcotest.(check string) "get inverts intern" v (Intern.get t id))
    values ids;
  let seen = Array.make (Intern.length t) false in
  Intern.iter (fun id _ -> seen.(id) <- true) t;
  Alcotest.(check bool) "iter covers 0..length-1" true (Array.for_all Fun.id seen)

let test_ctx_canonical () =
  let s = Intern.Ctx.create () in
  let id1 = Intern.Ctx.intern s [ a 0 8; b 0 16; a 8 16 ] in
  let id2 = Intern.Ctx.intern s [ a 8 16; a 0 8; b 0 16; a 0 8 ] in
  Alcotest.(check int) "permutations and duplicates share an id" id1 id2;
  Alcotest.(check int) "idempotent on the stored form" id1
    (Intern.Ctx.intern s (Intern.Ctx.get s id1));
  Alcotest.(check bool) "stored form is sorted and deduped" true
    (Intern.Ctx.get s id1 = List.sort_uniq compare [ a 0 8; a 8 16; b 0 16 ])

(* every pair of subsets of a small assumption universe, unioned through
   the memo table and against the reference sort_uniq implementation *)
let test_ctx_union () =
  let s = Intern.Ctx.create () in
  let universe = [ a 0 8; a 8 16; a 0 16; b 0 4; b 4 8 ] in
  let subsets =
    List.init 32 (fun mask ->
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) universe)
  in
  List.iter
    (fun xs ->
      List.iter
        (fun ys ->
          let ix = Intern.Ctx.intern s xs and iy = Intern.Ctx.intern s ys in
          let u = Intern.Ctx.union s ix iy in
          Alcotest.(check bool) "union agrees with reference" true
            (Intern.Ctx.get s u = List.sort_uniq compare (xs @ ys));
          Alcotest.(check int) "union is commutative" u (Intern.Ctx.union s iy ix);
          Alcotest.(check int) "union is memoized stably" u (Intern.Ctx.union s ix iy);
          Alcotest.(check int) "union with self is identity" ix
            (Intern.Ctx.union s ix ix))
        subsets)
    subsets

let () =
  Alcotest.run "intern"
    [ ("interner", [ Alcotest.test_case "dense ids" `Quick test_dense_ids ]);
      ( "contexts",
        [ Alcotest.test_case "canonicalization" `Quick test_ctx_canonical;
          Alcotest.test_case "memoized union vs reference" `Quick test_ctx_union ] ) ]
