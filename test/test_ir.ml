(* Tests for the SSA IR: lowering, dominators, mem2reg, the verifier, the
   control-dependence graph, and the reference interpreter (differential
   pre/post-SSA execution). *)

open Minic

let compile src =
  let prog = Parser.parse_string ~file:"<test>" src in
  Ssair.Build.lower (Typecheck.check_program prog)

let compile_ssa src =
  let ir = compile src in
  ignore (Ssair.Mem2reg.run ir);
  ir

let run_int ?entry src =
  match Ssair.Interp.run ?entry src with
  | Ssair.Interp.VInt n -> n
  | VFloat f -> Int64.of_float f
  | _ -> Alcotest.fail "expected integer result"

let run_src ?entry src = run_int ?entry (compile_ssa src)

(* run a program both before and after SSA conversion; results must agree *)
let differential src expected =
  let pre = compile src in
  let pre_result = run_int pre in
  let post = compile src in
  ignore (Ssair.Mem2reg.run post);
  let post_result = run_int post in
  Alcotest.(check int64) "pre-SSA result" expected pre_result;
  Alcotest.(check int64) "post-SSA result" expected post_result

let no_violations ?ssa ir =
  match Ssair.Verify.check_program ?ssa ir with
  | [] -> ()
  | vs ->
    Alcotest.fail
      (Fmt.str "verifier violations: %a" Fmt.(list ~sep:sp Ssair.Verify.pp_violation) vs)

(* -- Lowering shape ------------------------------------------------------- *)

let test_lower_simple () =
  let ir = compile "int add(int a, int b) { return a + b; }" in
  no_violations ir;
  let f = Option.get (Ssair.Ir.find_func ir "add") in
  Alcotest.(check int) "one block" 1 (List.length f.blocks)

let test_lower_if_blocks () =
  let ir = compile "int f(int x) { if (x > 0) { return 1; } return 0; }" in
  no_violations ir;
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  Alcotest.(check bool) "several blocks" true (List.length f.blocks >= 3)

let test_lower_annotations_kept () =
  let src =
    "float dec(float x)\n/*** SafeFlow Annotation assume(core(g, 0, 8)) ***/\n{ return x; }\n\
     double *g;"
  in
  let ir = compile src in
  let f = Option.get (Ssair.Ir.find_func ir "dec") in
  let annots =
    List.filter
      (fun i -> match i.Ssair.Ir.idesc with Ssair.Ir.Annotation _ -> true | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  Alcotest.(check int) "annotation instr" 1 (List.length annots)

let test_lower_switch () =
  let ir =
    compile
      "int f(int m) { int r = 0; switch (m) { case 1: r = 10; break; case 2: r = 20; \
       default: r = r + 1; } return r; }"
  in
  no_violations ir;
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let has_switch =
    List.exists
      (fun b -> match b.Ssair.Ir.termin with Ssair.Ir.Switch _ -> true | _ -> false)
      f.blocks
  in
  Alcotest.(check bool) "switch terminator" true has_switch

let test_lower_pointer_gep () =
  let ir = compile "int f(int *p, int i) { return p[i]; }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let has_gep =
    List.exists
      (fun i -> match i.Ssair.Ir.idesc with Ssair.Ir.Gep _ -> true | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  Alcotest.(check bool) "gep emitted" true has_gep

(* -- Dominators ------------------------------------------------------------ *)

let diamond_src =
  "int f(int x) { int r; if (x > 0) { r = 1; } else { r = 2; } return r; }"

let test_dom_diamond () =
  let ir = compile diamond_src in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let t = Ssair.Dom.compute f in
  (* entry dominates everything *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Fmt.str "entry dominates b%d" b.Ssair.Ir.bbid)
        true
        (Ssair.Dom.dominates t f.fentry b.Ssair.Ir.bbid))
    f.blocks;
  (* the join block is not dominated by either branch *)
  let preds = Ssair.Ir.predecessors f in
  let join =
    List.find
      (fun b ->
        List.length (Option.value ~default:[] (Hashtbl.find_opt preds b.Ssair.Ir.bbid)) = 2)
      f.blocks
  in
  let branches = Hashtbl.find preds join.bbid in
  List.iter
    (fun br ->
      Alcotest.(check bool) "branch does not dominate join" false
        (Ssair.Dom.dominates t br join.bbid))
    branches

let test_dom_frontier_diamond () =
  let ir = compile diamond_src in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let t = Ssair.Dom.compute f in
  let df = Ssair.Dom.frontiers f t in
  let preds = Ssair.Ir.predecessors f in
  let join =
    List.find
      (fun b ->
        List.length (Option.value ~default:[] (Hashtbl.find_opt preds b.Ssair.Ir.bbid)) = 2)
      f.blocks
  in
  let branches = Hashtbl.find preds join.bbid in
  List.iter
    (fun br ->
      let frontier = Option.value ~default:[] (Hashtbl.find_opt df br) in
      Alcotest.(check bool)
        (Fmt.str "DF(b%d) contains join" br)
        true
        (List.mem join.bbid frontier))
    branches

let test_dom_loop_header () =
  let ir = compile "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let t = Ssair.Dom.compute f in
  (* every block reachable: the dom tree covers all blocks *)
  List.iter
    (fun b ->
      if b.Ssair.Ir.bbid <> f.fentry then
        Alcotest.(check bool)
          (Fmt.str "b%d has idom" b.Ssair.Ir.bbid)
          true
          (Ssair.Dom.idom t b.Ssair.Ir.bbid <> None))
    f.blocks

(* -- Mem2reg / SSA ---------------------------------------------------------- *)

let test_ssa_verifies () =
  let ir = compile_ssa diamond_src in
  no_violations ~ssa:true ir

let test_ssa_phi_inserted () =
  let ir = compile_ssa diamond_src in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  Alcotest.(check bool) "phi exists" true (List.length (Ssair.Ir.all_phis f) >= 1)

let test_ssa_no_scalar_allocas () =
  let ir = compile_ssa diamond_src in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let scalar_allocas =
    List.filter
      (fun i ->
        match i.Ssair.Ir.idesc with
        | Ssair.Ir.Alloca { aty; _ } -> Ty.is_scalar aty
        | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  Alcotest.(check int) "no scalar allocas left" 0 (List.length scalar_allocas)

let test_ssa_address_taken_not_promoted () =
  let ir = compile_ssa "int f() { int x = 1; int *p = &x; *p = 5; return x; }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let allocas =
    List.filter
      (fun i -> match i.Ssair.Ir.idesc with Ssair.Ir.Alloca _ -> true | _ -> false)
      (Ssair.Ir.all_instrs f)
  in
  (* x must stay in memory (address taken); p is promotable *)
  Alcotest.(check int) "x not promoted" 1 (List.length allocas);
  no_violations ~ssa:true ir

let test_ssa_loop_phi () =
  let ir = compile_ssa "int f(int n) { int s = 0; int i = 0; while (i < n) { s += i; i++; } return s; }" in
  no_violations ~ssa:true ir;
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  Alcotest.(check bool) "loop phis" true (List.length (Ssair.Ir.all_phis f) >= 2)

(* -- Interpreter (differential) -------------------------------------------- *)

let test_interp_arith () = differential "int main() { return 2 + 3 * 4; }" 14L

let test_interp_branch () =
  differential "int main() { int x = 7; if (x > 3) { return 1; } else { return 2; } }" 1L

let test_interp_loop () =
  differential
    "int main() { int s = 0; for (int i = 1; i <= 10; i++) { s += i; } return s; }" 55L

let test_interp_factorial () =
  differential
    "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } \
     int main() { return fact(6); }"
    720L

let test_interp_gcd () =
  differential
    "int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; } \
     int main() { return gcd(1071, 462); }"
    21L

let test_interp_pointers () =
  differential
    "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; } \
     int main() { int x = 3; int y = 9; swap(&x, &y); return x * 100 + y; }"
    903L

let test_interp_array () =
  differential
    "int main() { int a[5]; for (int i = 0; i < 5; i++) { a[i] = i * i; } \
     int s = 0; for (int i = 0; i < 5; i++) { s += a[i]; } return s; }"
    30L

let test_interp_struct () =
  differential
    "struct P { int x; int y; }; \
     int main() { struct P p; p.x = 11; p.y = 31; return p.x + p.y; }"
    42L

let test_interp_struct_copy () =
  differential
    "struct P { int x; int y; }; \
     int main() { struct P a; a.x = 5; a.y = 6; struct P b; b = a; a.x = 0; return b.x * 10 + b.y; }"
    56L

let test_interp_global () =
  differential
    "int counter = 10; void bump() { counter += 5; } \
     int main() { bump(); bump(); return counter; }"
    20L

let test_interp_shortcircuit () =
  (* the right operand must not run when the left decides *)
  differential
    "int hits = 0; int probe() { hits = hits + 1; return 1; } \
     int main() { int a = 0; if (a && probe()) { } if (1 || probe()) { } return hits; }"
    0L

let test_interp_ternary () =
  differential "int main() { int x = 4; return x > 2 ? 100 : 200; }" 100L

let test_interp_switch () =
  differential
    "int classify(int m) { switch (m) { case 0: return 1; case 1: case 2: return 5; \
     default: return 9; } } \
     int main() { return classify(0) * 100 + classify(2) * 10 + classify(7); }"
    159L

let test_interp_switch_fallthrough () =
  differential
    "int main() { int r = 0; switch (2) { case 2: r += 1; case 3: r += 10; break; \
     case 4: r += 100; } return r; }"
    11L

let test_interp_double () =
  let r = run_src "int main() { double x = 1.5; double y = 2.25; double z = x * y; \
                   if (z == 3.375) { return 1; } return 0; }" in
  Alcotest.(check int64) "double arithmetic" 1L r

let test_interp_float_single () =
  (* float truncates to single precision through memory *)
  let r = run_src
      "int main() { float f = 0.1f; double d = f; if (d != 0.1) { return 1; } return 0; }"
  in
  Alcotest.(check int64) "single-precision rounding observable" 1L r

let test_interp_char_wrap () =
  differential "int main() { char c = 200; return c; }" (Int64.of_int (200 - 256))

let test_interp_global_init () =
  differential
    "double K[3] = { 1.5, 2.5, 3.0 }; int scale = 4; \
     int main() { double s = 0.0; for (int i = 0; i < 3; i++) { s += K[i]; } \
     return (int) s * scale; }"
    28L

let test_interp_string () =
  let r = run_src
      "int main() { char *s = \"AB\"; if (s[0] == 'A' && s[1] == 'B' && s[2] == 0) { return 7; } return 0; }"
  in
  Alcotest.(check int64) "string literal" 7L r

let test_interp_oob_trap () =
  let ir = compile_ssa "int main() { int a[3]; return a[10]; }" in
  match Ssair.Interp.run ir with
  | exception Ssair.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds trap"

let test_interp_div_zero_trap () =
  let ir = compile_ssa "int main() { int z = 0; return 5 / z; }" in
  match Ssair.Interp.run ir with
  | exception Ssair.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected division trap"

let test_interp_fuel () =
  let ir = compile_ssa "int main() { while (1) { } return 0; }" in
  match Ssair.Interp.run ~max_steps:1000 ir with
  | exception Ssair.Interp.Trap msg ->
    Alcotest.(check bool) "fuel message" true (Astring.String.is_infix ~affix:"fuel" msg)
  | _ -> Alcotest.fail "expected fuel trap"

let test_interp_extern_handler () =
  let ir =
    compile_ssa
      "extern int sensor_read(int); int main() { return sensor_read(3) + 1; }"
  in
  let handler _st name args =
    match (name, args) with
    | "sensor_read", [ Ssair.Interp.VInt n ] -> Ssair.Interp.VInt (Int64.mul n 10L)
    | _ -> Ssair.Interp.trap "unexpected extern %s" name
  in
  match Ssair.Interp.run ~extern_handler:handler ir with
  | Ssair.Interp.VInt 31L -> ()
  | _ -> Alcotest.fail "extern handler result"

(* but calling an *undeclared* function should be a type error at the
   frontend — keep that behaviour pinned here *)
let test_interp_undeclared_call_rejected () =
  match compile_ssa "int main() { return mystery(); }" with
  | exception Loc.Error (_, _) -> ()
  | _ -> Alcotest.fail "undeclared call must be rejected"

(* -- Control dependence graph ----------------------------------------------- *)

let test_cdg_if () =
  let ir = compile_ssa diamond_src in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let cdg = Ssair.Cdg.compute f in
  (* the entry block (holding the condition) controls both branch blocks *)
  let controlled =
    Option.value ~default:[]
      (Hashtbl.find_opt (Lazy.force cdg.Ssair.Cdg.controls) f.fentry)
  in
  Alcotest.(check bool) "entry controls branches" true (List.length controlled >= 2)

let test_cdg_straightline () =
  let ir = compile_ssa "int f() { int a = 1; int b = 2; return a + b; }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let cdg = Ssair.Cdg.compute f in
  List.iter
    (fun b ->
      Alcotest.(check (list int))
        (Fmt.str "b%d has no control deps" b.Ssair.Ir.bbid)
        []
        (Ssair.Cdg.deps_of cdg b.Ssair.Ir.bbid))
    f.blocks

let test_cdg_loop_self () =
  let ir = compile_ssa "int f(int n) { int s = 0; while (n > 0) { s++; n--; } return s; }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let cdg = Ssair.Cdg.compute f in
  (* loop body is control-dependent on the header *)
  let dependent_blocks =
    List.filter (fun b -> Ssair.Cdg.deps_of cdg b.Ssair.Ir.bbid <> []) f.blocks
  in
  Alcotest.(check bool) "some blocks control-dependent" true (dependent_blocks <> [])

let test_cdg_infinite_loop_tolerated () =
  let ir = compile_ssa "void f() { while (1) { } }" in
  let f = Option.get (Ssair.Ir.find_func ir "f") in
  let _ = Ssair.Cdg.compute f in
  ()

(* -- Property tests ----------------------------------------------------------- *)

(* random structured programs: lower → mem2reg → verifier passes and the
   interpreted result matches the pre-SSA interpretation *)
type sprog = { body : string; }

let gen_stmt_src =
  let open QCheck.Gen in
  let expr_leaf = oneof [ map (fun n -> string_of_int (abs n mod 100)) small_int; return "x"; return "y" ] in
  let expr =
    let* a = expr_leaf and* b = expr_leaf and* op = oneofl [ "+"; "-"; "*" ] in
    return (Fmt.str "(%s %s %s)" a op b)
  in
  let assign =
    let* v = oneofl [ "x"; "y" ] and* e = expr in
    return (Fmt.str "%s = %s;" v e)
  in
  let rec stmt n =
    if n <= 0 then assign
    else
      frequency
        [ (3, assign);
          ( 1,
            let* c = expr and* s1 = stmt (n / 2) and* s2 = stmt (n / 2) in
            return (Fmt.str "if (%s > 0) { %s } else { %s }" c s1 s2) );
          ( 1,
            let* s1 = stmt (n / 2) and* s2 = stmt (n / 2) in
            return (Fmt.str "%s %s" s1 s2) );
          ( 1,
            let* c = expr and* s1 = stmt (n / 2) in
            (* bounded loop via the counter k *)
            return
              (Fmt.str "{ int k = 0; while (k < 5 && (%s) > -999999) { %s k++; } }" c s1) ) ]
  in
  let* body = stmt 6 in
  return { body }

let arb_sprog = QCheck.make ~print:(fun p -> p.body) gen_stmt_src

let wrap_prog p =
  Fmt.str "int main() { int x = 3; int y = 17; %s return x * 31 + y; }" p.body

let prop_random_programs_verify =
  QCheck.Test.make ~name:"random programs: SSA verifies" ~count:120 arb_sprog (fun p ->
      let src = wrap_prog p in
      let ir = compile_ssa src in
      Ssair.Verify.check_program ~ssa:true ir = [])

let prop_mem2reg_preserves_semantics =
  QCheck.Test.make ~name:"mem2reg preserves semantics" ~count:120 arb_sprog (fun p ->
      let src = wrap_prog p in
      let pre = compile src in
      let post = compile src in
      ignore (Ssair.Mem2reg.run post);
      run_int pre = run_int post)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ir"
    [ ( "lowering",
        [ Alcotest.test_case "simple" `Quick test_lower_simple;
          Alcotest.test_case "if blocks" `Quick test_lower_if_blocks;
          Alcotest.test_case "annotations kept" `Quick test_lower_annotations_kept;
          Alcotest.test_case "switch" `Quick test_lower_switch;
          Alcotest.test_case "pointer gep" `Quick test_lower_pointer_gep ] );
      ( "dominators",
        [ Alcotest.test_case "diamond" `Quick test_dom_diamond;
          Alcotest.test_case "frontier diamond" `Quick test_dom_frontier_diamond;
          Alcotest.test_case "loop header" `Quick test_dom_loop_header ] );
      ( "mem2reg",
        [ Alcotest.test_case "ssa verifies" `Quick test_ssa_verifies;
          Alcotest.test_case "phi inserted" `Quick test_ssa_phi_inserted;
          Alcotest.test_case "no scalar allocas" `Quick test_ssa_no_scalar_allocas;
          Alcotest.test_case "address-taken kept" `Quick test_ssa_address_taken_not_promoted;
          Alcotest.test_case "loop phis" `Quick test_ssa_loop_phi ] );
      ( "interp",
        [ Alcotest.test_case "arith" `Quick test_interp_arith;
          Alcotest.test_case "branch" `Quick test_interp_branch;
          Alcotest.test_case "loop" `Quick test_interp_loop;
          Alcotest.test_case "factorial" `Quick test_interp_factorial;
          Alcotest.test_case "gcd" `Quick test_interp_gcd;
          Alcotest.test_case "pointers" `Quick test_interp_pointers;
          Alcotest.test_case "array" `Quick test_interp_array;
          Alcotest.test_case "struct" `Quick test_interp_struct;
          Alcotest.test_case "struct copy" `Quick test_interp_struct_copy;
          Alcotest.test_case "global" `Quick test_interp_global;
          Alcotest.test_case "shortcircuit" `Quick test_interp_shortcircuit;
          Alcotest.test_case "ternary" `Quick test_interp_ternary;
          Alcotest.test_case "switch" `Quick test_interp_switch;
          Alcotest.test_case "switch fallthrough" `Quick test_interp_switch_fallthrough;
          Alcotest.test_case "double" `Quick test_interp_double;
          Alcotest.test_case "float rounding" `Quick test_interp_float_single;
          Alcotest.test_case "char wrap" `Quick test_interp_char_wrap;
          Alcotest.test_case "global init" `Quick test_interp_global_init;
          Alcotest.test_case "string" `Quick test_interp_string;
          Alcotest.test_case "oob trap" `Quick test_interp_oob_trap;
          Alcotest.test_case "div zero trap" `Quick test_interp_div_zero_trap;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "extern handler" `Quick test_interp_extern_handler;
          Alcotest.test_case "undeclared call rejected" `Quick
            test_interp_undeclared_call_rejected ] );
      ( "cdg",
        [ Alcotest.test_case "if" `Quick test_cdg_if;
          Alcotest.test_case "straightline" `Quick test_cdg_straightline;
          Alcotest.test_case "loop" `Quick test_cdg_loop_self;
          Alcotest.test_case "infinite loop" `Quick test_cdg_infinite_loop_tolerated ] );
      ( "properties",
        [ qt prop_random_programs_verify; qt prop_mem2reg_preserves_semantics ] ) ]
