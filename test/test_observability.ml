(* Observability-layer tests:

   - Jsonlite round-trips of the JSON the tool itself emits, plus the
     edge cases a reader must survive: \uXXXX escapes (including
     surrogate pairs), deep nesting, mantissa-boundary numbers, and
     every truncated prefix of a document;
   - Telemetry worker-snapshot merging: counters summed, gauges max'd,
     float gauges max'd, histograms merged bucket-wise (percentiles
     recomputed, never averaged), empty and version-mismatched
     snapshots, deep span trees aggregated fleet-wide in the stats JSON;
   - Ledger: the per-obligation audit trail reconciles exactly with the
     phase-2 bounds summary on every subject system;
   - Events: every constructor yields one parseable line with the
     expected fields;
   - Progress: event lines drive the members-done accounting and the
     rendered line;
   - Benchdiff: identical files gate 0, an injected 25 % slowdown on
     the same host gates 1, a host mismatch is non-blocking, a
     throughput drop counts as a regression, sub-noise rows and
     _stddev companions never gate.

   These tests mutate the process-global telemetry state; each one
   resets it and the file ends with telemetry disabled. *)

open Safeflow

let tmpfile suffix =
  Filename.temp_file "sf-obs" suffix

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

(* -- Jsonlite ----------------------------------------------------------------- *)

let test_jsonlite_basics () =
  let doc = {|{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5,"e":""}}|} in
  match Jsonlite.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check (option int)) "int member" (Some 1)
      (Option.bind (Jsonlite.member "a" j) Jsonlite.to_int);
    let b = Option.bind (Jsonlite.member "b" j) Jsonlite.to_list in
    (match b with
    | Some [ Jsonlite.Bool true; Jsonlite.Null; Jsonlite.Str s ] ->
      Alcotest.(check string) "escaped string decoded" "x\ny" s
    | _ -> Alcotest.fail "array shape");
    Alcotest.(check (option (float 1e-9))) "nested float" (Some (-2.5))
      (Option.bind (Jsonlite.member "c" j) (fun c ->
           Option.bind (Jsonlite.member "d" c) Jsonlite.to_float))

let test_jsonlite_errors () =
  let bad s =
    match Jsonlite.parse s with Ok _ -> Alcotest.fail ("accepted " ^ s) | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "tru";
  bad "";
  (* escape must survive a round-trip through parse *)
  let tricky = "a\"b\\c\nd\te\r" ^ String.make 1 (Char.chr 7) in
  let doc = "{\"k\":\"" ^ Jsonlite.escape tricky ^ "\"}" in
  match Jsonlite.parse doc with
  | Ok j ->
    Alcotest.(check (option string)) "escape round-trip" (Some tricky)
      (Option.bind (Jsonlite.member "k" j) Jsonlite.to_string)
  | Error e -> Alcotest.fail e

let test_jsonlite_unicode () =
  let str1 doc =
    match Jsonlite.parse doc with
    | Ok j -> (
      match Option.bind (Jsonlite.member "k" j) Jsonlite.to_string with
      | Some s -> s
      | None -> Alcotest.fail ("no string member in " ^ doc))
    | Error e -> Alcotest.fail (e ^ " in " ^ doc)
  in
  Alcotest.(check string) "ascii escape" "A" (str1 {|{"k":"\u0041"}|});
  Alcotest.(check string) "2-byte utf8" "\xc3\xa9" (str1 {|{"k":"\u00e9"}|});
  Alcotest.(check string) "3-byte utf8" "\xe2\x82\xac" (str1 {|{"k":"\u20ac"}|});
  (* U+1F600 needs a surrogate pair and a 4-byte UTF-8 encoding *)
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80"
    (str1 {|{"k":"\ud83d\ude00"}|});
  Alcotest.(check string) "surrogate pair, upper-case hex" "\xf0\x9f\x98\x80"
    (str1 {|{"k":"\uD83D\uDE00"}|});
  (* U+10000, the lowest supplementary code point *)
  Alcotest.(check string) "first supplementary code point" "\xf0\x90\x80\x80"
    (str1 {|{"k":"\ud800\udc00"}|});
  let bad doc =
    match Jsonlite.parse doc with
    | Ok _ -> Alcotest.fail ("accepted " ^ doc)
    | Error _ -> ()
  in
  bad {|{"k":"\ud83d"}|};          (* unpaired high surrogate at end *)
  bad {|{"k":"\ud83dx"}|};         (* high surrogate, then plain char *)
  bad {|{"k":"\ud83d\n"}|};        (* high surrogate, then other escape *)
  bad {|{"k":"\ud83d\u0041"}|};  (* high surrogate, then non-low escape *)
  bad {|{"k":"\ude00"}|};          (* lone low surrogate *)
  bad {|{"k":"\uZZZZ"}|};          (* non-hex digits *)
  bad {|{"k":"\u1_23"}|};          (* OCaml int literal syntax is not hex *)
  bad {|{"k":"\u00"}|}             (* hex digits cut short by the quote *)

let test_jsonlite_deep_nesting () =
  let depth = 10_000 in
  let doc = String.make depth '[' ^ "7" ^ String.make depth ']' in
  match Jsonlite.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let rec unwrap n j =
      match j with
      | Jsonlite.Arr [ inner ] -> unwrap (n + 1) inner
      | Jsonlite.Num f -> (n, f)
      | _ -> Alcotest.fail "unexpected shape"
    in
    let n, f = unwrap 0 j in
    Alcotest.(check int) "depth preserved" depth n;
    Alcotest.(check (float 0.0)) "leaf value" 7.0 f

let test_jsonlite_num_boundaries () =
  let int_of doc =
    match Jsonlite.parse doc with
    | Ok j -> Option.bind (Jsonlite.member "n" j) Jsonlite.to_int
    | Error e -> Alcotest.fail e
  in
  (* numbers are doubles: every integer with |n| <= 2^53 is exact *)
  Alcotest.(check (option int)) "2^53-1 exact" (Some 9007199254740991)
    (int_of {|{"n":9007199254740991}|});
  Alcotest.(check (option int)) "-(2^53-1) exact" (Some (-9007199254740991))
    (int_of {|{"n":-9007199254740991}|});
  Alcotest.(check (option int)) "2^53 exact" (Some 9007199254740992)
    (int_of {|{"n":9007199254740992}|});
  (* int64-boundary inputs parse (rounded to the nearest double) rather
     than erroring; only <= 2^53 exactness is promised *)
  (match Jsonlite.parse {|{"n":9223372036854775807}|} with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Option.bind (Jsonlite.member "n" j) Jsonlite.to_float with
    | None -> Alcotest.fail "int64 max not numeric"
    | Some f ->
      Alcotest.(check bool) "int64 max within rounding" true
        (abs_float (f -. 9.223372036854775808e18) <= 2048.0)));
  match Jsonlite.parse {|{"n":-9223372036854775808}|} with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_jsonlite_truncated_prefixes () =
  (* no strict prefix of an object document is valid JSON — the brace
     never closes.  Every cut point, including mid-escape and
     mid-surrogate-pair, must yield Error: never an exception, never a
     bogus Ok. *)
  let doc = {|{"k":[1,-2.5e2,{"u":"\u0041\ud83d\ude00"},null,true,"x\ty"]}|} in
  for n = 0 to String.length doc - 1 do
    match Jsonlite.parse (String.sub doc 0 n) with
    | Ok _ -> Alcotest.failf "prefix of length %d accepted" n
    | Error _ -> ()
  done;
  match Jsonlite.parse doc with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("full document rejected: " ^ e)

(* -- Telemetry snapshot merge -------------------------------------------------- *)

let fresh () =
  Telemetry.set_enabled true;
  Telemetry.reset ()

let counter_value name = Telemetry.value (Telemetry.counter name)

let mk_snapshot ?(pid = 4242) ?(version = Telemetry.snapshot_version)
    ?(counters = []) ?(gauge_names = []) ?(fgauges = []) ?(hists = [])
    ?(spans = []) ?(sections = []) () =
  {
    Telemetry.sn_version = version;
    sn_pid = pid;
    sn_counters = counters;
    sn_gauge_names = gauge_names;
    sn_fgauges = fgauges;
    sn_hists = hists;
    sn_spans = spans;
    sn_sections = sections;
  }

let test_merge_counters () =
  fresh ();
  Telemetry.add (Telemetry.counter "obs.a") 5;
  let w1 = mk_snapshot ~counters:[ ("obs.a", 3); ("obs.b", 7) ] () in
  let w2 = mk_snapshot ~counters:[ ("obs.a", 2); ("obs.b", 1) ] () in
  Alcotest.(check bool) "merge w1" true (Telemetry.merge_worker ~label:"w1" w1);
  Alcotest.(check bool) "merge w2" true (Telemetry.merge_worker ~label:"w2" w2);
  Alcotest.(check int) "duplicate names summed across workers" 10 (counter_value "obs.a");
  Alcotest.(check int) "worker-only counter adopted" 8 (counter_value "obs.b");
  Alcotest.(check int) "both snapshots retained" 2 (List.length (Telemetry.workers ()))

let test_merge_empty_and_mismatch () =
  fresh ();
  Telemetry.add (Telemetry.counter "obs.a") 5;
  Alcotest.(check bool) "empty snapshot merges" true
    (Telemetry.merge_worker ~label:"empty" (mk_snapshot ()));
  Alcotest.(check int) "empty worker is a no-op on counters" 5 (counter_value "obs.a");
  Alcotest.(check bool) "version mismatch rejected" false
    (Telemetry.merge_worker ~label:"bad"
       (mk_snapshot ~version:(Telemetry.snapshot_version + 1)
          ~counters:[ ("obs.a", 100) ] ()));
  Alcotest.(check int) "rejected snapshot merged nothing" 5 (counter_value "obs.a");
  Alcotest.(check int) "rejected snapshot not retained" 1
    (List.length (Telemetry.workers ()))

let test_merge_gauges () =
  fresh ();
  Telemetry.record_max (Telemetry.gauge "obs.peak") 4;
  let w1 = mk_snapshot ~counters:[ ("obs.peak", 9) ] ~gauge_names:[ "obs.peak" ] () in
  let w2 = mk_snapshot ~counters:[ ("obs.peak", 6) ] ~gauge_names:[ "obs.peak" ] () in
  ignore (Telemetry.merge_worker ~label:"w1" w1);
  ignore (Telemetry.merge_worker ~label:"w2" w2);
  Alcotest.(check int) "gauge max'd, not summed" 9 (counter_value "obs.peak");
  (* a gauge the parent never registered is adopted as a gauge *)
  let w3 = mk_snapshot ~counters:[ ("obs.other_peak", 3) ] ~gauge_names:[ "obs.other_peak" ] () in
  let w4 = mk_snapshot ~counters:[ ("obs.other_peak", 2) ] ~gauge_names:[ "obs.other_peak" ] () in
  ignore (Telemetry.merge_worker ~label:"w3" w3);
  ignore (Telemetry.merge_worker ~label:"w4" w4);
  Alcotest.(check bool) "adopted as gauge" true (Telemetry.is_gauge "obs.other_peak");
  Alcotest.(check int) "adopted gauge max'd" 3 (counter_value "obs.other_peak");
  (* float gauges *)
  Telemetry.record_float_max "obs.rate" 10.5;
  ignore
    (Telemetry.merge_worker ~label:"w5" (mk_snapshot ~fgauges:[ ("obs.rate", 99.25) ] ()));
  ignore
    (Telemetry.merge_worker ~label:"w6" (mk_snapshot ~fgauges:[ ("obs.rate", 50.0) ] ()));
  Alcotest.(check (list (pair string (float 1e-9)))) "float gauge max'd"
    [ ("obs.rate", 99.25) ]
    (Telemetry.float_gauges ())

(* -- Latency histograms ---------------------------------------------------- *)

let hist_view name =
  match
    List.find_opt
      (fun (hv : Telemetry.hist_view) -> hv.Telemetry.hv_name = name)
      (Telemetry.histograms ())
  with
  | Some hv -> hv
  | None -> Alcotest.fail ("histogram not registered: " ^ name)

let test_hist_buckets () =
  fresh ();
  let h = Telemetry.histogram "obs.hist" in
  List.iter
    (fun ns -> Telemetry.observe_ns h (Int64.of_int ns))
    [ 0; 1; 2; 3; 4; 1023; 1024 ];
  let hv = hist_view "obs.hist" in
  Alcotest.(check int) "count" 7 hv.Telemetry.hv_count;
  Alcotest.(check int) "sum" (0 + 1 + 2 + 3 + 4 + 1023 + 1024) hv.Telemetry.hv_sum_ns;
  Alcotest.(check int) "bucket 0 absorbs 0 and 1 ns" 2 hv.Telemetry.hv_buckets.(0);
  Alcotest.(check int) "bucket 1 = [2,4)" 2 hv.Telemetry.hv_buckets.(1);
  Alcotest.(check int) "bucket 2 = [4,8)" 1 hv.Telemetry.hv_buckets.(2);
  Alcotest.(check int) "bucket 9 = [512,1024)" 1 hv.Telemetry.hv_buckets.(9);
  Alcotest.(check int) "bucket 10 = [1024,2048)" 1 hv.Telemetry.hv_buckets.(10);
  (* negative durations (clock hiccups) clamp into bucket 0 *)
  Telemetry.observe_ns h (-5L);
  Alcotest.(check int) "negative clamps to bucket 0" 3
    (hist_view "obs.hist").Telemetry.hv_buckets.(0);
  (* the switch gates recording completely *)
  Telemetry.set_enabled false;
  Telemetry.observe_ns h 100L;
  Alcotest.(check int) "no observations while off" 8
    (hist_view "obs.hist").Telemetry.hv_count

let test_hist_percentiles () =
  fresh ();
  let h = Telemetry.histogram "obs.pct" in
  let hv0 = hist_view "obs.pct" in
  Alcotest.(check int) "empty histogram p50 = 0" 0 hv0.Telemetry.hv_p50_ns;
  (* 50 fast (bucket 6), 45 medium (bucket 13), 5 slow (bucket 19):
     percentile estimates are the ceiling of the crossing bucket *)
  for _ = 1 to 50 do Telemetry.observe_ns h 100L done;
  for _ = 1 to 45 do Telemetry.observe_ns h 10_000L done;
  for _ = 1 to 5 do Telemetry.observe_ns h 1_000_000L done;
  let hv = hist_view "obs.pct" in
  Alcotest.(check int) "p50 = ceiling of [64,128)" 127 hv.Telemetry.hv_p50_ns;
  Alcotest.(check int) "p90 = ceiling of [8192,16384)" 16383 hv.Telemetry.hv_p90_ns;
  Alcotest.(check int) "p99 = ceiling of [2^19,2^20)" 1048575 hv.Telemetry.hv_p99_ns

let test_hist_merge () =
  fresh ();
  let h = Telemetry.histogram "obs.mh" in
  for _ = 1 to 10 do Telemetry.observe_ns h 100L done;
  (* worker 1: 50 observations in bucket 13; worker 2: 30 in bucket 19,
     shipped in a short (non-64-length) bucket array, which merge must
     tolerate *)
  let w1b = Array.init 64 (fun i -> if i = 13 then 50 else 0) in
  let w2b = Array.init 20 (fun i -> if i = 19 then 30 else 0) in
  ignore
    (Telemetry.merge_worker ~label:"w1"
       (mk_snapshot ~hists:[ ("obs.mh", 50, 500_000, w1b) ] ()));
  ignore
    (Telemetry.merge_worker ~label:"w2"
       (mk_snapshot ~hists:[ ("obs.mh", 30, 30_000_000, w2b) ] ()));
  let hv = hist_view "obs.mh" in
  Alcotest.(check int) "counts summed" 90 hv.Telemetry.hv_count;
  Alcotest.(check int) "sums summed" (1_000 + 500_000 + 30_000_000)
    hv.Telemetry.hv_sum_ns;
  Alcotest.(check int) "bucket 6 kept" 10 hv.Telemetry.hv_buckets.(6);
  Alcotest.(check int) "bucket 13 merged" 50 hv.Telemetry.hv_buckets.(13);
  Alcotest.(check int) "bucket 19 merged" 30 hv.Telemetry.hv_buckets.(19);
  (* percentiles recomputed from the merged buckets, never averaged:
     cumulative 10/60/90 puts p50 in bucket 13 and p90 in bucket 19 *)
  Alcotest.(check int) "merged p50" 16383 hv.Telemetry.hv_p50_ns;
  Alcotest.(check int) "merged p90" 1048575 hv.Telemetry.hv_p90_ns;
  (* the stats JSON carries the fleet view and each worker's own *)
  let path = tmpfile ".json" in
  Telemetry.write_stats_json path;
  let j = Jsonlite.parse_exn (read_file path) in
  Sys.remove path;
  let top =
    Option.bind (Jsonlite.member "histograms" j) (Jsonlite.member "obs.mh")
  in
  Alcotest.(check (option int)) "fleet-merged count in stats JSON" (Some 90)
    (Option.bind top (fun h -> Option.bind (Jsonlite.member "count" h) Jsonlite.to_int));
  (match Option.bind top (fun h -> Option.bind (Jsonlite.member "buckets" h) Jsonlite.to_list) with
  | Some pairs ->
    let pair p =
      match Jsonlite.to_list p with
      | Some [ a; b ] -> (Jsonlite.to_int a, Jsonlite.to_int b)
      | _ -> Alcotest.fail "bucket pair shape"
    in
    Alcotest.(check (list (pair (option int) (option int))))
      "sparse [bucket,count] pairs"
      [ (Some 6, Some 10); (Some 13, Some 50); (Some 19, Some 30) ]
      (List.map pair pairs)
  | None -> Alcotest.fail "no buckets array in stats JSON");
  let workers =
    Option.get (Option.bind (Jsonlite.member "workers" j) Jsonlite.to_list)
  in
  let w1 =
    List.find
      (fun w -> Option.bind (Jsonlite.member "label" w) Jsonlite.to_string = Some "w1")
      workers
  in
  Alcotest.(check (option int)) "per-worker histogram retained" (Some 50)
    (Option.bind (Jsonlite.member "histograms" w1) (fun hs ->
         Option.bind (Jsonlite.member "obs.mh" hs) (fun h ->
             Option.bind (Jsonlite.member "count" h) Jsonlite.to_int)))

let test_hist_trace_counters () =
  fresh ();
  let h = Telemetry.histogram "obs.tc" in
  Telemetry.observe_ns h 5_000L;
  let path = tmpfile ".json" in
  Telemetry.write_chrome_trace path;
  let j = Jsonlite.parse_exn (read_file path) in
  Sys.remove path;
  let events =
    Option.get (Option.bind (Jsonlite.member "traceEvents" j) Jsonlite.to_list)
  in
  match
    List.find_opt
      (fun e ->
        Option.bind (Jsonlite.member "name" e) Jsonlite.to_string
        = Some "hist:obs.tc")
      events
  with
  | None -> Alcotest.fail "no counter event for histogram"
  | Some e ->
    Alcotest.(check (option string)) "counter phase" (Some "C")
      (Option.bind (Jsonlite.member "ph" e) Jsonlite.to_string);
    let args = Option.get (Jsonlite.member "args" e) in
    Alcotest.(check (option int)) "count arg" (Some 1)
      (Option.bind (Jsonlite.member "count" args) Jsonlite.to_int);
    (* 5000 ns lands in [4096,8192): the p50 estimate is the ceiling *)
    Alcotest.(check (option (float 1e-6))) "p50 in microseconds" (Some 8.191)
      (Option.bind (Jsonlite.member "p50_us" args) Jsonlite.to_float)

(* worker span lists keep their own id space; merging must still fold
   same-named spans at the same depth into one aggregate node *)
let test_merge_deep_span_trees () =
  fresh ();
  (* parent records root > mid > leaf once, for real *)
  Telemetry.span "root" (fun () ->
      Telemetry.span "mid" (fun () -> Telemetry.span "leaf" (fun () -> ())));
  (* a worker saw the same tree twice, under clashing span ids *)
  let span ~id ~parent name =
    {
      Telemetry.s_id = id;
      s_parent = parent;
      s_name = name;
      s_args = [];
      s_domain = 0;
      s_start_ns = Int64.of_int (id * 10);
      s_dur_ns = 1000L;
    }
  in
  let wspans =
    [
      span ~id:0 ~parent:(-1) "root";
      span ~id:1 ~parent:0 "mid";
      span ~id:2 ~parent:1 "leaf";
      span ~id:3 ~parent:(-1) "root";
      span ~id:4 ~parent:3 "mid";
      span ~id:5 ~parent:4 "leaf";
    ]
  in
  ignore (Telemetry.merge_worker ~label:"w" (mk_snapshot ~spans:wspans ()));
  let path = tmpfile ".json" in
  Telemetry.write_stats_json path;
  let j = Jsonlite.parse_exn (read_file path) in
  Sys.remove path;
  Alcotest.(check (option string)) "schema v4" (Some "safeflow-telemetry/4")
    (Option.bind (Jsonlite.member "schema" j) Jsonlite.to_string);
  let spans = Option.get (Option.bind (Jsonlite.member "spans" j) Jsonlite.to_list) in
  let find name depth =
    List.find_opt
      (fun s ->
        Option.bind (Jsonlite.member "name" s) Jsonlite.to_string = Some name
        && Option.bind (Jsonlite.member "depth" s) Jsonlite.to_int = Some depth)
      spans
  in
  let count name depth =
    Option.bind (find name depth) (fun s ->
        Option.bind (Jsonlite.member "count" s) Jsonlite.to_int)
  in
  Alcotest.(check (option int)) "root: 1 parent + 2 worker" (Some 3) (count "root" 0);
  Alcotest.(check (option int)) "mid under root" (Some 3) (count "mid" 1);
  Alcotest.(check (option int)) "leaf at depth 2" (Some 3) (count "leaf" 2);
  Alcotest.(check bool) "leaf not misplaced at root" true (find "leaf" 0 = None);
  (* workers section carries the snapshot verbatim *)
  let workers = Option.get (Option.bind (Jsonlite.member "workers" j) Jsonlite.to_list) in
  (match workers with
  | [ w ] ->
    Alcotest.(check (option string)) "worker label" (Some "w")
      (Option.bind (Jsonlite.member "label" w) Jsonlite.to_string);
    Alcotest.(check (option int)) "worker pid" (Some 4242)
      (Option.bind (Jsonlite.member "pid" w) Jsonlite.to_int)
  | _ -> Alcotest.fail "expected exactly one worker view")

let test_trace_multi_pid () =
  fresh ();
  Telemetry.span "parent.work" (fun () -> ());
  let wspan =
    {
      Telemetry.s_id = 0;
      s_parent = -1;
      s_name = "worker.work";
      s_args = [];
      s_domain = 0;
      s_start_ns = 0L;
      s_dur_ns = 500L;
    }
  in
  ignore (Telemetry.merge_worker ~label:"w0" (mk_snapshot ~pid:777 ~spans:[ wspan ] ()));
  let path = tmpfile ".json" in
  Telemetry.write_chrome_trace path;
  let j = Jsonlite.parse_exn (read_file path) in
  Sys.remove path;
  let events = Option.get (Option.bind (Jsonlite.member "traceEvents" j) Jsonlite.to_list) in
  let pids_of ph =
    List.filter_map
      (fun e ->
        if Option.bind (Jsonlite.member "ph" e) Jsonlite.to_string = Some ph then
          Option.bind (Jsonlite.member "pid" e) Jsonlite.to_int
        else None)
      events
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "two distinct span pids" 2 (List.length (pids_of "X"));
  Alcotest.(check bool) "worker pid present" true (List.mem 777 (pids_of "X"));
  Alcotest.(check bool) "process_name metadata for both" true
    (List.length (pids_of "M") = 2)

(* -- Obligation ledger ----------------------------------------------------------- *)

(* The reconciliation contract (DESIGN.md §16): summing the ledger's
   counted entries must reproduce the phase-2 bounds summary exactly —
   per discharge class, per query, per avoided query — on every subject
   system, with and without the value-range analysis.  The bounds
   summary reaches the report through the coverage stats, so the two
   accountings take fully independent paths from phase 2 outward. *)
let ledger_systems =
  [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c"; "figure2.c"; "car_follow.c" ]

let test_ledger_reconcile name () =
  let src = read_file (find_system name) in
  List.iter
    (fun (label, config) ->
      let a = Driver.analyze ~config src in
      let r = Ledger.reconcile a.Driver.ledger in
      let stat k =
        match List.assoc_opt k a.Driver.report.Report.stats with
        | Some v -> v
        | None -> Alcotest.fail ("missing report stat " ^ k)
      in
      let chk what key got = Alcotest.(check int) (label ^ ": " ^ what) (stat key) got in
      chk "obligations" "a1a2_obligations" r.Ledger.r_total;
      chk "by ranges" "a1a2_by_ranges" r.Ledger.r_ranges;
      chk "by omega" "a1a2_by_omega" r.Ledger.r_omega;
      chk "failed" "a1a2_failed" r.Ledger.r_failed;
      chk "queries avoided" "omega_queries_avoided" r.Ledger.r_avoided;
      (* structural sanity: range discharges never queried the solver,
         Omega discharges always did, and the ledger is in sorted order *)
      List.iter
        (fun (e : Ledger.entry) ->
          match e.Ledger.l_discharge with
          | Ledger.Ranges ->
            Alcotest.(check int) (label ^ ": ranges entry queries") 0 e.Ledger.l_queries
          | Ledger.Omega_unsat | Ledger.Omega_hyp ->
            Alcotest.(check bool) (label ^ ": omega entry queried") true
              (e.Ledger.l_queries >= 1)
          | _ -> ())
        a.Driver.ledger;
      Alcotest.(check bool) (label ^ ": ledger sorted") true
        (Ledger.sort a.Driver.ledger = a.Driver.ledger))
    [ ("absint", Config.default);
      ("no-absint", { Config.default with Config.absint = false }) ]

(* -- Events --------------------------------------------------------------------- *)

let test_events_parse () =
  let str name j = Option.bind (Jsonlite.member name j) Jsonlite.to_string in
  let int name j = Option.bind (Jsonlite.member name j) Jsonlite.to_int in
  let lines =
    [
      Events.fleet_start ~systems:64 ~jobs:2 ~shard_domains:2;
      Events.worker_start ~worker:1 ~pid:123 ~members:32;
      Events.member_start ~worker:1 ~path:"m\"quoted\".c";
      Events.member_done ~worker:1 ~path:"m.c" ~errors:1 ~warnings:2 ~findings:3
        ~cache_hits:4 ~cache_misses:5 ~certs:(7, 1, 2) ~elapsed_ms:6.5 ();
      Events.cache_recovered ~worker:1 ~ns:"phase3" ~key:"abc" ~kind:"corrupt";
      Events.heartbeat ~worker:1 ~done_:10 ~total:32;
      Events.worker_done ~worker:1 ~members:32 ~errors:4 ~warnings:8;
      Events.fleet_done ~systems:64 ~elapsed_s:1.5 ~analyses_per_sec:42.7;
    ]
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Jsonlite.parse line with
      | Error e -> Alcotest.fail (e ^ ": " ^ line)
      | Ok j ->
        Alcotest.(check bool) ("ev field: " ^ line) true (str "ev" j <> None);
        Alcotest.(check bool) "wall clock" true
          (Option.bind (Jsonlite.member "t" j) Jsonlite.to_float <> None))
    lines;
  let first = Jsonlite.parse_exn (List.nth lines 0) in
  Alcotest.(check (option string)) "schema on fleet_start" (Some Events.schema)
    (str "schema" first);
  let md = Jsonlite.parse_exn (List.nth lines 3) in
  Alcotest.(check (option int)) "findings" (Some 3) (int "findings" md);
  Alcotest.(check (option int)) "cache delta" (Some 4) (int "cache_hits" md);
  Alcotest.(check (option int)) "certs pass" (Some 7) (int "certs_pass" md);
  Alcotest.(check (option int)) "certs skipped" (Some 2) (int "certs_skipped" md);
  let rec_ = Jsonlite.parse_exn (List.nth lines 4) in
  Alcotest.(check (option string)) "recovery kind" (Some "corrupt")
    (str "kind" rec_);
  Alcotest.(check (option string)) "recovery ns" (Some "phase3") (str "ns" rec_);
  let quoted = Jsonlite.parse_exn (List.nth lines 2) in
  Alcotest.(check (option string)) "path with quotes survives" (Some "m\"quoted\".c")
    (str "path" quoted)

(* -- Progress -------------------------------------------------------------------- *)

let test_progress () =
  let path = tmpfile ".txt" in
  let oc = open_out path in
  let p = Progress.create ~out:oc ~interval_s:0.0 ~total:4 () in
  Progress.feed p (Events.fleet_start ~systems:4 ~jobs:2 ~shard_domains:1);
  for w = 0 to 1 do
    Progress.feed p (Events.worker_start ~worker:w ~pid:(100 + w) ~members:2)
  done;
  for i = 0 to 3 do
    let w = i mod 2 in
    Progress.feed p (Events.member_start ~worker:w ~path:(Printf.sprintf "m%d.c" i));
    Progress.feed p
      (Events.member_done ~worker:w ~path:(Printf.sprintf "m%d.c" i) ~errors:0
         ~warnings:0 ~findings:0 ~cache_hits:0 ~cache_misses:0 ~elapsed_ms:1.0 ())
  done;
  Progress.feed p "not json at all";  (* must not raise *)
  Progress.finish p;
  close_out oc;
  let out = read_file path in
  Sys.remove path;
  Alcotest.(check int) "all members counted" 4 (Progress.members_done p);
  Alcotest.(check bool) "final state rendered" true
    (Astring.String.is_infix ~affix:"4/4 members" out)

(* -- Benchdiff ------------------------------------------------------------------- *)

let bench_doc ?(host = Some "ci-host") ?(ms = 10.0) ?(aps = 100.0) ?(noise = 1.0) () =
  let hostfield =
    match host with
    | Some h -> Printf.sprintf {|"hostname":"%s",|} h
    | None -> ""
  in
  Printf.sprintf
    {|{"benchmark":"t","meta":{%s"config_fingerprint":"f1"},
      "rows":[{"system":"S1","engine":"worklist","run_ms":%f,"run_stddev_ms":%f,
               "warm_analyses_per_sec":%f,"hits":12},
              {"system":"tiny","engine":"worklist","run_ms":0.01}]}|}
    hostfield ms noise aps

let diff_docs ?threshold a b =
  match Benchdiff.diff ?threshold ~old_text:a ~new_text:b () with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_benchdiff_identical () =
  let d = bench_doc () in
  let v = diff_docs d d in
  Alcotest.(check int) "rows matched" 2 v.Benchdiff.v_rows_matched;
  Alcotest.(check bool) "host match" true v.Benchdiff.v_host_match;
  Alcotest.(check int) "no deltas" 0 (List.length v.Benchdiff.v_deltas);
  Alcotest.(check int) "gate 0" 0 (Benchdiff.gate v)

let test_benchdiff_slowdown () =
  (* 25 % slower on the same host: must gate non-zero *)
  let v = diff_docs (bench_doc ()) (bench_doc ~ms:12.5 ()) in
  (match Benchdiff.regressions v with
  | [ r ] ->
    Alcotest.(check string) "metric" "run_ms" r.Benchdiff.d_metric;
    Alcotest.(check bool) "~+25%" true (abs_float (r.Benchdiff.d_change_pct -. 25.0) < 0.01)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length rs)));
  Alcotest.(check int) "gate 1" 1 (Benchdiff.gate v);
  (* same slowdown within threshold: no gate *)
  let v = diff_docs ~threshold:0.30 (bench_doc ()) (bench_doc ~ms:12.5 ()) in
  Alcotest.(check int) "inside custom threshold" 0 (Benchdiff.gate v)

let test_benchdiff_throughput_drop () =
  let v = diff_docs (bench_doc ()) (bench_doc ~aps:70.0 ()) in
  (match Benchdiff.regressions v with
  | [ r ] -> Alcotest.(check string) "metric" "warm_analyses_per_sec" r.Benchdiff.d_metric
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length rs)));
  Alcotest.(check int) "gate 1" 1 (Benchdiff.gate v)

let test_benchdiff_host_mismatch () =
  let v = diff_docs (bench_doc ()) (bench_doc ~host:(Some "other") ~ms:20.0 ()) in
  Alcotest.(check bool) "regression still reported" true (Benchdiff.regressions v <> []);
  Alcotest.(check int) "but non-blocking" 0 (Benchdiff.gate v);
  (* missing hostnames are not a match either *)
  let v = diff_docs (bench_doc ~host:None ()) (bench_doc ~host:None ~ms:20.0 ()) in
  Alcotest.(check bool) "no hostname, no match" false v.Benchdiff.v_host_match;
  Alcotest.(check int) "gate 0" 0 (Benchdiff.gate v)

let test_benchdiff_noise_immune () =
  (* stddev companion doubling and a 10x change on a 0.01 ms row: neither gates *)
  let v = diff_docs (bench_doc ()) (bench_doc ~noise:2.0 ()) in
  Alcotest.(check int) "stddev excluded" 0 (List.length v.Benchdiff.v_deltas);
  let tiny_old = {|{"meta":{"hostname":"h"},"rows":[{"system":"t","run_ms":0.01}]}|} in
  let tiny_new = {|{"meta":{"hostname":"h"},"rows":[{"system":"t","run_ms":0.1}]}|} in
  let v = diff_docs tiny_old tiny_new in
  Alcotest.(check int) "sub-noise row ignored" 0 (List.length v.Benchdiff.v_deltas)

let () =
  let cleanup f () =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.set_enabled false;
        Telemetry.reset ())
      f
  in
  Alcotest.run "observability"
    [ ( "jsonlite",
        [ Alcotest.test_case "basics" `Quick test_jsonlite_basics;
          Alcotest.test_case "errors and escapes" `Quick test_jsonlite_errors;
          Alcotest.test_case "unicode escapes and surrogate pairs" `Quick
            test_jsonlite_unicode;
          Alcotest.test_case "deep nesting" `Quick test_jsonlite_deep_nesting;
          Alcotest.test_case "numeric boundaries" `Quick test_jsonlite_num_boundaries;
          Alcotest.test_case "truncated prefixes" `Quick
            test_jsonlite_truncated_prefixes ] );
      ( "telemetry-merge",
        [ Alcotest.test_case "counters summed" `Quick (cleanup test_merge_counters);
          Alcotest.test_case "empty and version mismatch" `Quick
            (cleanup test_merge_empty_and_mismatch);
          Alcotest.test_case "gauges max'd" `Quick (cleanup test_merge_gauges);
          Alcotest.test_case "deep span trees aggregated" `Quick
            (cleanup test_merge_deep_span_trees);
          Alcotest.test_case "multi-pid chrome trace" `Quick
            (cleanup test_trace_multi_pid) ] );
      ( "histograms",
        [ Alcotest.test_case "log2 bucketing" `Quick (cleanup test_hist_buckets);
          Alcotest.test_case "percentile estimates" `Quick
            (cleanup test_hist_percentiles);
          Alcotest.test_case "fleet merge bucket-wise" `Quick (cleanup test_hist_merge);
          Alcotest.test_case "chrome trace counters" `Quick
            (cleanup test_hist_trace_counters) ] );
      ( "ledger",
        List.map
          (fun name ->
            Alcotest.test_case name `Quick (test_ledger_reconcile name))
          ledger_systems );
      ( "events",
        [ Alcotest.test_case "constructors parse" `Quick test_events_parse ] );
      ( "progress",
        [ Alcotest.test_case "event stream drives rendering" `Quick test_progress ] );
      ( "benchdiff",
        [ Alcotest.test_case "identical files" `Quick test_benchdiff_identical;
          Alcotest.test_case "25% slowdown gates" `Quick test_benchdiff_slowdown;
          Alcotest.test_case "throughput drop gates" `Quick test_benchdiff_throughput_drop;
          Alcotest.test_case "host mismatch non-blocking" `Quick
            test_benchdiff_host_mismatch;
          Alcotest.test_case "noise immunity" `Quick test_benchdiff_noise_immune ] )
    ]
