(* Tests for the Omega-lite integer feasibility solver: unit cases for
   equality elimination, dark shadow and splinters, plus property tests
   against brute-force enumeration on boxed systems. *)

open Omega
module Linexpr = Omega.Linexpr

let x = Linexpr.var "x"
let y = Linexpr.var "y"
let z = Linexpr.var "z"
let c n = Linexpr.const n

let check_result name expected cs =
  Alcotest.(check string) name
    (Fmt.str "%a" pp_result expected)
    (Fmt.str "%a" pp_result (feasible cs))

(* -- Basic ----------------------------------------------------------------- *)

let test_trivial_sat () = check_result "empty system" Sat []

let test_const_unsat () = check_result "0 >= 1" Unsat [ Geq (c (-1)) ]

let test_simple_bounds () =
  check_result "0 <= x <= 10" Sat [ ge x (c 0); le x (c 10) ];
  check_result "x <= 0 and x >= 1" Unsat [ le x (c 0); ge x (c 1) ]

let test_strict_lt () =
  check_result "x < 1 and x > -1 has x=0" Sat [ lt x (c 1); gt x (c (-1)) ];
  check_result "0 < x < 1 empty over Z" Unsat [ gt x (c 0); lt x (c 1) ]

let test_two_vars () =
  check_result "x + y = 5, x,y >= 0" Sat
    [ eq (Linexpr.add x y) (c 5); ge x (c 0); ge y (c 0) ];
  check_result "x + y = 5, x,y >= 3" Unsat
    [ eq (Linexpr.add x y) (c 5); ge x (c 3); ge y (c 3) ]

(* -- Equality elimination --------------------------------------------------- *)

let test_diophantine_sat () =
  (* 3x + 5y = 1 has integer solutions *)
  check_result "3x + 5y = 1" Sat
    [ eq (Linexpr.add (Linexpr.scale 3 x) (Linexpr.scale 5 y)) (c 1) ]

let test_diophantine_unsat () =
  (* 3x + 6y = 1: gcd 3 does not divide 1 *)
  check_result "3x + 6y = 1" Unsat
    [ eq (Linexpr.add (Linexpr.scale 3 x) (Linexpr.scale 6 y)) (c 1) ]

let test_pugh_large_coeff_equality () =
  (* needs the symmetric-modulus substitution: no unit coefficient *)
  check_result "7x + 12y = 17, 0<=x,y<=20" Sat
    [ eq (Linexpr.add (Linexpr.scale 7 x) (Linexpr.scale 12 y)) (c 17);
      ge x (c (-20)); le x (c 20); ge y (c (-20)); le y (c 20) ]

let test_three_equalities () =
  check_result "x=2, y=3, z=x+y" Sat
    [ eq x (c 2); eq y (c 3); eq z (Linexpr.add x y); ge z (c 5); le z (c 5) ];
  check_result "x=2, y=3, z=x+y, z=6" Unsat
    [ eq x (c 2); eq y (c 3); eq z (Linexpr.add x y); eq z (c 6) ]

(* -- Dark shadow / splinters ------------------------------------------------- *)

let test_dark_shadow_gap () =
  (* 2x >= 1 and 2x <= 1: real shadow is nonempty (x = 0.5) but no integer *)
  check_result "1 <= 2x <= 1" Unsat
    [ ge (Linexpr.scale 2 x) (c 1); le (Linexpr.scale 2 x) (c 1) ]

let test_dark_shadow_wide () =
  check_result "1 <= 2x <= 4" Sat
    [ ge (Linexpr.scale 2 x) (c 1); le (Linexpr.scale 2 x) (c 4) ]

let test_splinter_case () =
  (* classic omega-test example: 3 | y via 3x = y with narrow bounds on y *)
  check_result "3x = y, 4 <= y <= 5" Unsat
    [ eq (Linexpr.scale 3 x) y; ge y (c 4); le y (c 5) ];
  check_result "3x = y, 4 <= y <= 6" Sat
    [ eq (Linexpr.scale 3 x) y; ge y (c 4); le y (c 6) ]

let test_coupled_inexact () =
  (* 2x = 3y forces x divisible by 3; in [5,7] only x=6 (y=4) works *)
  check_result "2x=3y, 5<=x<=7, y>=5" Unsat
    [ eq (Linexpr.scale 2 x) (Linexpr.scale 3 y); ge x (c 5); le x (c 7); ge y (c 5) ];
  check_result "2x=3y, 5<=x<=7" Sat
    [ eq (Linexpr.scale 2 x) (Linexpr.scale 3 y); ge x (c 5); le x (c 7) ]

(* -- Array-bounds shaped queries (what SafeFlow phase 2 issues) -------------- *)

let test_loop_bounds_safe () =
  (* for (i = 0; i < n; i++) access a[i], array size n = 16:
     infeasible to have 0 <= i < 16 and (i < 0 or i >= 16) *)
  let i = Linexpr.var "i" in
  check_result "in-bounds loop, negative index" Unsat
    [ ge i (c 0); lt i (c 16); lt i (c 0) ];
  check_result "in-bounds loop, overflow index" Unsat
    [ ge i (c 0); lt i (c 16); ge i (c 16) ]

let test_loop_bounds_violation () =
  (* for (i = 0; i <= n; i++) with size n: i = n is out of bounds *)
  let i = Linexpr.var "i" in
  check_result "off-by-one is reachable" Sat [ ge i (c 0); le i (c 16); ge i (c 16) ]

let test_affine_transform_bounds () =
  (* access a[2*i + 1] for 0 <= i < 8, array size 16: max index 15, safe *)
  let i = Linexpr.var "i" in
  let idx = Linexpr.add (Linexpr.scale 2 i) (c 1) in
  check_result "2i+1 under 16 safe" Unsat
    [ ge i (c 0); lt i (c 8); ge idx (c 16) ];
  (* size 15 would overflow at i = 7 *)
  check_result "2i+1 under 15 unsafe" Sat
    [ ge i (c 0); lt i (c 8); ge idx (c 15) ]

let test_symbolic_size () =
  (* 0 <= i < n and n <= 64 and i >= n is infeasible *)
  let i = Linexpr.var "i" and n = Linexpr.var "n" in
  check_result "symbolic bound" Unsat [ ge i (c 0); lt i n; le n (c 64); ge i n ]

(* -- entails_not helper ------------------------------------------------------- *)

let test_entails () =
  Alcotest.(check bool) "x>=5 entails not(x<=3)" true
    (entails_not [ ge x (c 5) ] (le x (c 3)));
  Alcotest.(check bool) "x>=5 does not entail not(x<=7)" false
    (entails_not [ ge x (c 5) ] (le x (c 7)))

(* -- Overflow and budget ------------------------------------------------------ *)

let test_overflow_unknown () =
  (* coprime huge coefficients survive normalization; the shadow products
     overflow inside the solver, which must answer without crashing *)
  let a = 1 lsl 40 in
  let cs =
    [ Geq (Linexpr.sub (Linexpr.var ~coeff:a "x") (Linexpr.var ~coeff:(a + 1) "y"));
      Geq (Linexpr.sub (Linexpr.var ~coeff:(a + 1) "z") (Linexpr.var ~coeff:a "x")) ]
  in
  match feasible ~fuel:5000 cs with Sat | Unsat | Unknown -> ()

let test_constructor_overflow_total () =
  (* near-max_int constants (e.g. hypothesis bounds derived from value
     ranges) overflow while BUILDING the constraint, before feasible's
     handler is in scope; the constructors must degrade to a trivially
     true constraint instead of raising *)
  let huge = c (max_int - 1) in
  let neg_huge = c (min_int + 2) in
  let cs =
    [ le neg_huge x;    (* x - (min_int + 2) overflows *)
      ge huge x;        (* fine *)
      lt x huge;        (* (max_int - 1) - x - 1 may overflow under shift *)
      gt x neg_huge;
      eq (Linexpr.add x huge) huge ]
  in
  (match feasible cs with Sat | Unsat | Unknown -> ());
  (* a weakened conjunct must never manufacture an Unsat: x = 0 satisfies
     every non-degenerate constraint above *)
  Alcotest.(check bool) "no false unsat" true (feasible cs <> Unsat)

let test_budget_exhaustion () =
  (* dense random-ish system with tiny fuel must not loop forever *)
  let cs =
    List.init 12 (fun i ->
        ge
          (Linexpr.add (Linexpr.scale ((i mod 5) + 2) x)
             (Linexpr.scale ((i mod 7) + 2) y))
          (c (i - 6)))
  in
  match feasible ~fuel:10 cs with
  | Sat | Unsat | Unknown -> ()

(* -- Properties ---------------------------------------------------------------- *)

let box_lo = -6
let box_hi = 6

(* brute-force over the box *)
let brute_force_sat cs =
  let vals = List.init (box_hi - box_lo + 1) (fun i -> box_lo + i) in
  List.exists
    (fun vx ->
      List.exists
        (fun vy ->
          List.exists
            (fun vz ->
              let assign v =
                match v with
                | "x" -> vx
                | "y" -> vy
                | "z" -> vz
                | _ -> 0
              in
              List.for_all
                (fun cstr ->
                  match cstr with
                  | Eq e -> Linexpr.eval e assign = 0
                  | Geq e -> Linexpr.eval e assign >= 0)
                cs)
            vals)
        vals)
    vals

let gen_linexpr =
  let open QCheck.Gen in
  let* cx = int_range (-4) 4
  and* cy = int_range (-4) 4
  and* cz = int_range (-4) 4
  and* k = int_range (-10) 10 in
  return
    (Linexpr.add
       (Linexpr.add (Linexpr.var ~coeff:cx "x") (Linexpr.var ~coeff:cy "y"))
       (Linexpr.add (Linexpr.var ~coeff:cz "z") (Linexpr.const k)))

let gen_boxed_system =
  let open QCheck.Gen in
  let* n = int_range 1 4 in
  let* exprs = list_size (return n) gen_linexpr in
  let* kinds = list_size (return n) (oneofl [ `Eq; `Geq ]) in
  let cs =
    List.map2 (fun e k -> match k with `Eq -> Eq e | `Geq -> Geq e) exprs kinds
  in
  (* box constraints confine all solutions to the brute-force range *)
  let box =
    List.concat_map
      (fun v ->
        [ ge (Linexpr.var v) (Linexpr.const box_lo);
          le (Linexpr.var v) (Linexpr.const box_hi) ])
      [ "x"; "y"; "z" ]
  in
  return (cs @ box)

let arb_system =
  QCheck.make
    ~print:(fun cs -> Fmt.str "%a" Fmt.(list ~sep:(any " && ") pp_cstr) cs)
    gen_boxed_system

let prop_matches_brute_force =
  QCheck.Test.make ~name:"omega matches brute force on boxed systems" ~count:300
    arb_system (fun cs ->
      match feasible cs with
      | Unknown -> true
      | Sat -> brute_force_sat cs
      | Unsat -> not (brute_force_sat cs))

let prop_monotone_unsat =
  (* adding constraints can never turn Unsat into Sat *)
  QCheck.Test.make ~name:"adding constraints preserves unsat" ~count:150
    (QCheck.pair arb_system arb_system) (fun (cs1, cs2) ->
      match (feasible cs1, feasible (cs1 @ cs2)) with
      | Unsat, Sat -> false
      | _ -> true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "omega"
    [ ( "basic",
        [ Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "const unsat" `Quick test_const_unsat;
          Alcotest.test_case "simple bounds" `Quick test_simple_bounds;
          Alcotest.test_case "strict lt" `Quick test_strict_lt;
          Alcotest.test_case "two vars" `Quick test_two_vars ] );
      ( "equalities",
        [ Alcotest.test_case "diophantine sat" `Quick test_diophantine_sat;
          Alcotest.test_case "diophantine unsat" `Quick test_diophantine_unsat;
          Alcotest.test_case "pugh substitution" `Quick test_pugh_large_coeff_equality;
          Alcotest.test_case "three equalities" `Quick test_three_equalities ] );
      ( "shadows",
        [ Alcotest.test_case "dark shadow gap" `Quick test_dark_shadow_gap;
          Alcotest.test_case "dark shadow wide" `Quick test_dark_shadow_wide;
          Alcotest.test_case "splinters" `Quick test_splinter_case;
          Alcotest.test_case "coupled inexact" `Quick test_coupled_inexact ] );
      ( "array-bounds",
        [ Alcotest.test_case "loop bounds safe" `Quick test_loop_bounds_safe;
          Alcotest.test_case "off-by-one" `Quick test_loop_bounds_violation;
          Alcotest.test_case "affine transform" `Quick test_affine_transform_bounds;
          Alcotest.test_case "symbolic size" `Quick test_symbolic_size;
          Alcotest.test_case "entails" `Quick test_entails ] );
      ( "robustness",
        [ Alcotest.test_case "overflow unknown" `Quick test_overflow_unknown;
          Alcotest.test_case "constructor overflow total" `Quick
            test_constructor_overflow_total;
          Alcotest.test_case "budget" `Quick test_budget_exhaustion ] );
      ("properties", [ qt prop_matches_brute_force; qt prop_monotone_unsat ]) ]
