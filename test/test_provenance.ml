(* Provenance witnesses: every phase-3 dependency must carry a
   structured value-flow path (Report.d_path) whose endpoints and chain
   can be checked mechanically — the machine-checkable counterpart of
   the paper's "review the value-flow graph" workflow.

   Checked on every subject system under both engines:
   - every dependency has a non-empty path whose string rendering IS the
     legacy d_trace (they are derived from the same structure);
   - consecutive non-synthetic steps chain by entity identity
     (step[i+1].p_parent = step[i].p_key);
   - the path starts at a source (no parent) and ends at the sink side
     (an entity of the sink's function, a memory object, or a synthetic
     narrative step such as "reachable from critical pointer"). *)

open Safeflow

let find_system name =
  let candidates =
    [ "../../../systems/" ^ name; "../../systems/" ^ name; "systems/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate systems/" ^ name)

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let starts_with prefix s = Astring.String.is_prefix ~affix:prefix s

let is_synthetic (s : Report.path_step) = s.Report.p_key = ""

(* Entity descriptions are "<func>:..." (values, params, returns),
   "mem ..." (points-to nodes) or "non-core region ..." (sources). *)
let step_function_of_desc desc =
  match String.index_opt desc ':' with
  | Some i when not (starts_with "mem " desc) -> Some (String.sub desc 0 i)
  | _ -> None

let check_dependency label (r : Report.t) (d : Report.dependency) =
  let steps = d.Report.d_path in
  if steps = [] then Alcotest.failf "%s: empty witness path" label;
  (* derivation invariant: the legacy string trace is the path, rendered *)
  Alcotest.(check (list string))
    (label ^ ": d_trace = path_strings d_path")
    d.Report.d_trace (Report.path_strings steps);
  (* the source end opens the chain *)
  let first = List.hd steps in
  if first.Report.p_parent <> None then
    Alcotest.failf "%s: first step %s has a parent" label first.Report.p_desc;
  (* chain connectivity between consecutive non-synthetic steps *)
  ignore
    (List.fold_left
       (fun (prev : Report.path_step option) (s : Report.path_step) ->
         (match prev with
         | Some p when (not (is_synthetic p)) && not (is_synthetic s) ->
           if s.Report.p_parent <> Some p.Report.p_key then
             Alcotest.failf "%s: step %S does not chain to %S" label s.Report.p_desc
               p.Report.p_desc
         | _ -> ());
         Some s)
       None steps);
  (* a non-synthetic source must be a non-core region the report knows,
     or a message-passing pseudo-region ("socket via recv", §3.4.3) *)
  if not (is_synthetic first) && starts_with "non-core region " first.Report.p_desc
  then begin
    let region =
      String.sub first.Report.p_desc 16 (String.length first.Report.p_desc - 16)
    in
    let noncore =
      List.exists (fun (n, _, nc) -> n = region && nc) r.Report.regions
    in
    let socket = Astring.String.is_infix ~affix:"socket" region in
    if not (noncore || socket) then
      Alcotest.failf "%s: source region %s is not a known non-core region" label region;
    (* shared-memory sources must also show up as a read-site warning *)
    if
      noncore
      && not
           (List.exists
              (fun (w : Report.warning) -> w.Report.w_region = region)
              r.Report.warnings)
    then Alcotest.failf "%s: no read-site warning for source region %s" label region
  end;
  (* the sink end belongs to the dependency's function, is a memory
     object, or is narrative *)
  let last = List.nth steps (List.length steps - 1) in
  let sink_ok =
    is_synthetic last
    || starts_with "mem " last.Report.p_desc
    || step_function_of_desc last.Report.p_desc = Some d.Report.d_func
  in
  if not sink_ok then
    Alcotest.failf "%s: sink step %S does not reach %s" label last.Report.p_desc
      d.Report.d_func

let system_files =
  [ "ip_controller.c"; "generic_simplex.c"; "double_ip.c"; "figure2.c"; "car_follow.c" ]

let engines = [ ("legacy", Config.Legacy); ("worklist", Config.Worklist) ]

let test_system name () =
  let src = read_file (find_system name) in
  List.iter
    (fun (ename, engine) ->
      let config = { Config.default with engine } in
      let r = (Driver.analyze ~config ~file:name src).Driver.report in
      if Report.errors r = [] then
        Alcotest.failf "%s/%s: expected at least one error dependency" name ename;
      List.iter
        (fun (d : Report.dependency) ->
          check_dependency (Fmt.str "%s/%s %s" name ename d.Report.d_sink) r d)
        r.Report.dependencies)
    engines

(* Figure 2 of the paper: the witness must run from the unmonitored
   feedback read into the final safety assertion in main. *)
let test_figure2_pin () =
  let src = read_file (find_system "figure2.c") in
  List.iter
    (fun (ename, engine) ->
      let config = { Config.default with engine } in
      let r = (Driver.analyze ~config ~file:"figure2.c" src).Driver.report in
      match Report.errors r with
      | [ d ] ->
        Alcotest.(check string)
          (ename ^ ": sink") "assert(safe(output))" d.Report.d_sink;
        let steps = d.Report.d_path in
        Alcotest.(check string)
          (ename ^ ": source step")
          "non-core region feedback"
          (List.hd steps).Report.p_desc;
        let last = List.nth steps (List.length steps - 1) in
        Alcotest.(check bool)
          (ename ^ ": sink step in main")
          true
          (starts_with "main:" last.Report.p_desc);
        Alcotest.(check bool) (ename ^ ": multi-step") true (List.length steps >= 3)
      | deps -> Alcotest.failf "%s: expected exactly 1 error, got %d" ename (List.length deps))
    engines

(* Control-only dependencies carry witnesses too (possibly narrative). *)
let test_control_paths () =
  let src = read_file (find_system "generic_simplex.c") in
  let r = (Driver.analyze ~file:"generic_simplex.c" src).Driver.report in
  let ctrl = Report.control_deps r in
  if ctrl = [] then Alcotest.fail "expected control-only dependencies";
  List.iter
    (fun (d : Report.dependency) ->
      if d.Report.d_path = [] then
        Alcotest.failf "control dep %s: empty witness" d.Report.d_sink)
    ctrl

let () =
  Alcotest.run "provenance"
    [ ( "witness paths",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_system name))
          system_files );
      ( "pins",
        [ Alcotest.test_case "figure2 witness" `Quick test_figure2_pin;
          Alcotest.test_case "control-only witnesses" `Quick test_control_paths ] ) ]
