(* End-to-end tests for the SafeFlow analysis: region discovery, warnings,
   monitoring contexts, restriction checking (P1-P3, A1/A2), critical
   sinks, control dependence, the message-passing extension, InitCheck,
   and the ablation toggles. *)

open Safeflow

let analyze ?config src = (Driver.analyze ?config src).Driver.report

let full ?config src = Driver.analyze ?config src

(* A reusable system skeleton: two regions, one non-core, one core. *)
let prelude =
  {|
struct SHMData { double control; double track; double angle; };
typedef struct SHMData SHMData;
SHMData *nc;       /* written by the non-core controller */
SHMData *corefb;   /* written only by core components */
extern void sendControl(double v);

void initComm()
/*** SafeFlow Annotation shminit ***/
{
  void *base;
  int id;
  id = shmget(7000, 2 * sizeof(SHMData), 438);
  base = shmat(id, (void *) 0, 0);
  nc = (SHMData *) base;
  corefb = nc + 1;
  /*** SafeFlow Annotation
       assume(shmvar(nc, sizeof(SHMData)))
       assume(shmvar(corefb, sizeof(SHMData)))
       assume(noncore(nc)) ***/
}
|}

let count_warnings r = List.length r.Report.warnings
let count_errors r = List.length (Report.errors r)
let count_control r = List.length (Report.control_deps r)
let count_violations r = List.length r.Report.violations

let rule_violations rule r =
  List.filter (fun v -> v.Report.v_rule = rule) r.Report.violations

(* -- Region discovery --------------------------------------------------------- *)

let test_regions_discovered () =
  let r = analyze (prelude ^ "int main() { initComm(); return 0; }") in
  Alcotest.(check int) "two regions" 2 (List.length r.Report.regions);
  let nc = List.find (fun (n, _, _) -> n = "nc") r.Report.regions in
  let core = List.find (fun (n, _, _) -> n = "corefb") r.Report.regions in
  (match nc with
  | _, sz, noncore ->
    Alcotest.(check int) "nc size" 24 sz;
    Alcotest.(check bool) "nc is noncore" true noncore);
  match core with
  | _, _, noncore -> Alcotest.(check bool) "corefb is core" false noncore

let test_annotation_count () =
  let r = analyze (prelude ^ "int main() { initComm(); return 0; }") in
  (* shminit + 2 shmvar + 1 noncore = 4 clauses *)
  Alcotest.(check int) "annotation clauses" 4 r.Report.annotation_lines

(* -- Warnings ------------------------------------------------------------------ *)

let test_unmonitored_read_warns () =
  let r =
    analyze
      (prelude
     ^ {| int main() { initComm(); double v = nc->control; sendControl(v); return 0; } |})
  in
  Alcotest.(check int) "one warning" 1 (count_warnings r);
  let w = List.hd r.Report.warnings in
  Alcotest.(check string) "region" "nc" w.Report.w_region;
  Alcotest.(check string) "function" "main" w.Report.w_func

let test_core_region_read_safe () =
  let r =
    analyze
      (prelude
     ^ {| int main() { initComm(); double v = corefb->track; sendControl(v);
          /*** SafeFlow Annotation assert(safe(v)) ***/
          return 0; } |})
  in
  Alcotest.(check int) "no warnings" 0 (count_warnings r);
  Alcotest.(check int) "no errors" 0 (count_errors r)

let test_monitored_read_safe () =
  let r =
    analyze
      (prelude
     ^ {|
double monitor(SHMData *p)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  double v = p->control;
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() { initComm(); double out = monitor(nc);
  /*** SafeFlow Annotation assert(safe(out)) ***/
  sendControl(out); return 0; }
|})
  in
  Alcotest.(check int) "no warnings" 0 (count_warnings r);
  Alcotest.(check int) "no data errors" 0 (count_errors r)

let test_partial_monitor_range () =
  (* monitoring only the first 8 bytes leaves the rest unmonitored *)
  let r =
    analyze
      (prelude
     ^ {|
double monitor(SHMData *p)
/*** SafeFlow Annotation assume(core(nc, 0, 8)) ***/
{
  double ok = p->control;   /* offset 0: covered */
  double bad = p->angle;    /* offset 16: not covered */
  return ok + bad;
}
int main() { initComm(); sendControl(monitor(nc)); return 0; }
|})
  in
  Alcotest.(check int) "one warning for the uncovered field" 1 (count_warnings r)

let test_warning_deduplication () =
  (* the same load site reached from two call sites warns once *)
  let r =
    analyze
      (prelude
     ^ {|
double readit() { return nc->control; }
int main() { initComm(); double a = readit(); double b = readit();
  sendControl(a + b); return 0; }
|})
  in
  Alcotest.(check int) "one deduplicated warning" 1 (count_warnings r)

(* -- Context sensitivity --------------------------------------------------------- *)

let ctx_src =
  prelude
  ^ {|
double readval(SHMData *p) { return p->control; }
double monitored(SHMData *p)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  double v = readval(p);
  if (v > 5.0 || v < -5.0) { return 0.0; }
  return v;
}
int main() {
  initComm();
  double x = monitored(nc);
  /*** SafeFlow Annotation assert(safe(x)) ***/
  double y = readval(nc);
  sendControl(x + y);
  return 0;
}
|}

let test_context_sensitive_helper () =
  let r = analyze ctx_src in
  (* the readval load is monitored via monitored(), unmonitored via main *)
  Alcotest.(check int) "one warning (unmonitored context)" 1 (count_warnings r);
  Alcotest.(check int) "x is safe: no data errors" 0 (count_errors r)

let test_context_insensitive_ablation () =
  let config = { Config.default with context_sensitive = false } in
  let r = analyze ~config ctx_src in
  (* merging contexts loses the monitoring: x becomes (spuriously) unsafe *)
  Alcotest.(check bool) "ablation introduces a false error" true (count_errors r >= 1)

(* -- Critical sinks ----------------------------------------------------------------- *)

let test_kill_sink () =
  let r =
    analyze
      (prelude
     ^ {|
struct Ctl { int pid; int cmd; };
typedef struct Ctl Ctl;
int main() {
  initComm();
  int pid = (int) nc->control;
  kill(pid, 9);
  return 0;
}
|})
  in
  Alcotest.(check int) "kill pid dependency" 1 (count_errors r);
  let d = List.hd (Report.errors r) in
  Alcotest.(check bool) "sink mentions kill" true
    (Astring.String.is_infix ~affix:"kill" d.Report.d_sink)

let test_safe_kill_no_error () =
  let r =
    analyze
      (prelude
     ^ {| int main() { initComm(); int pid = getpid(); kill(pid, 9); return 0; } |})
  in
  Alcotest.(check int) "no error for own pid" 0 (count_errors r)

(* -- Control dependence -------------------------------------------------------------- *)

let control_src =
  prelude
  ^ {|
double pick() {
  if (nc->track > 0.5) {
    return 1.0;
  }
  return 2.0;
}
int main() {
  initComm();
  double v = pick();
  /*** SafeFlow Annotation assert(safe(v)) ***/
  sendControl(v);
  return 0;
}
|}

let test_control_only_dependency () =
  let r = analyze control_src in
  Alcotest.(check int) "no data error" 0 (count_errors r);
  Alcotest.(check bool) "control-only dependency reported" true (count_control r >= 1);
  Alcotest.(check int) "warning for the config read" 1 (count_warnings r)

let test_control_deps_ablation () =
  let config = { Config.default with control_deps = false } in
  let r = analyze ~config control_src in
  Alcotest.(check int) "no control-only reports when disabled" 0 (count_control r)

let test_data_beats_control () =
  (* when the value itself is tainted, report Data (not control-only) *)
  let r =
    analyze
      (prelude
     ^ {|
int main() {
  initComm();
  double v = 0.0;
  if (nc->track > 0.5) { v = nc->control; } else { v = 1.0; }
  /*** SafeFlow Annotation assert(safe(v)) ***/
  sendControl(v);
  return 0;
}
|})
  in
  Alcotest.(check int) "data error" 1 (count_errors r)

(* -- Restrictions ----------------------------------------------------------------------- *)

let test_p2_store_of_shm_pointer () =
  let r =
    analyze
      (prelude
     ^ {|
struct Holder { SHMData *ptr; };
struct Holder h;
int main() { initComm(); h.ptr = nc; return 0; }
|})
  in
  Alcotest.(check bool) "P2 violation" true (List.length (rule_violations Report.P2 r) >= 1)

let test_p3_cast_to_int () =
  let r =
    analyze
      (prelude ^ {| int main() { initComm(); long addr = (long) nc; return (int) addr; } |})
  in
  Alcotest.(check bool) "P3 violation" true (List.length (rule_violations Report.P3 r) >= 1)

let test_p3_incompatible_cast () =
  let r =
    analyze
      (prelude
     ^ {|
struct Other { int a; int b; };
int main() { initComm(); struct Other *o = (struct Other *) nc; return o->a; }
|})
  in
  Alcotest.(check bool) "P3 violation" true (List.length (rule_violations Report.P3 r) >= 1)

let test_p1_dealloc_outside_main () =
  let r =
    analyze
      (prelude
     ^ {|
void cleanup() { shmdt((void *) 0); shmdt(nc); }
int main() { initComm(); cleanup(); return 0; }
|})
  in
  Alcotest.(check bool) "P1 violation" true (List.length (rule_violations Report.P1 r) >= 1)

let test_p1_ok_at_end_of_main () =
  let r =
    analyze
      (prelude
     ^ {| int main() { initComm(); double v = corefb->track; sendControl(v); shmdt(nc); return 0; } |})
  in
  Alcotest.(check int) "no P1 violation at end of main" 0
    (List.length (rule_violations Report.P1 r))

let test_p1_dealloc_then_use () =
  let r =
    analyze
      (prelude
     ^ {| int main() { initComm(); shmdt(nc); double v = corefb->track; sendControl(v); return 0; } |})
  in
  Alcotest.(check bool) "P1 violation when shm used after" true
    (List.length (rule_violations Report.P1 r) >= 1)

(* cast inside the init function is exempt *)
let test_init_function_exempt () =
  let r = analyze (prelude ^ "int main() { initComm(); return 0; }") in
  Alcotest.(check int) "no violations from initComm" 0 (count_violations r)

(* -- Array bounds (A1/A2) ------------------------------------------------------------------ *)

let array_prelude =
  {|
double *samples;
extern void sendControl(double v);

void initArr()
/*** SafeFlow Annotation shminit ***/
{
  void *base;
  int id;
  id = shmget(7100, 16 * sizeof(double), 438);
  base = shmat(id, (void *) 0, 0);
  samples = (double *) base;
  /*** SafeFlow Annotation assume(shmvar(samples, 16 * sizeof(double))) ***/
}
|}

let test_a1_in_bounds_loop () =
  let r =
    analyze
      (array_prelude
     ^ {|
int main() {
  initArr();
  double s = 0.0;
  for (int i = 0; i < 16; i++) { s = s + samples[i]; }
  sendControl(s);
  return 0;
}
|})
  in
  Alcotest.(check int) "no bounds violations" 0 (count_violations r)

let test_a1_off_by_one () =
  let r =
    analyze
      (array_prelude
     ^ {|
int main() {
  initArr();
  double s = 0.0;
  for (int i = 0; i <= 16; i++) { s = s + samples[i]; }
  sendControl(s);
  return 0;
}
|})
  in
  Alcotest.(check bool) "A1 violation" true (List.length (rule_violations Report.A1 r) >= 1)

let test_a1_constant_oob () =
  let r = analyze (array_prelude ^ "int main() { initArr(); return (int) samples[20]; }") in
  Alcotest.(check bool) "A1 violation for constant index" true
    (List.length (rule_violations Report.A1 r) >= 1)

let test_a1_negative_start () =
  let r =
    analyze
      (array_prelude
     ^ {|
int main() {
  initArr();
  double s = 0.0;
  for (int i = -1; i < 16; i++) { s = s + samples[i]; }
  sendControl(s);
  return 0;
}
|})
  in
  Alcotest.(check bool) "A1 violation for negative index" true
    (List.length (rule_violations Report.A1 r) >= 1)

let test_a2_affine_transform () =
  (* samples[2*i + 1] for i in [0,8): max index 15 — safe *)
  let r =
    analyze
      (array_prelude
     ^ {|
int main() {
  initArr();
  double s = 0.0;
  for (int i = 0; i < 8; i++) { s = s + samples[2 * i + 1]; }
  sendControl(s);
  return 0;
}
|})
  in
  Alcotest.(check int) "affine transform proven safe" 0 (count_violations r)

let test_a2_non_affine () =
  let r =
    analyze
      (array_prelude
     ^ {|
extern int mystery(int x);
int main() {
  initArr();
  int k = mystery(3);
  return (int) samples[k];
}
|})
  in
  Alcotest.(check bool) "A2 violation for unprovable index" true
    (List.length (rule_violations Report.A2 r) >= 1)

let test_a2_guarded_symbolic_index () =
  (* a branch guard makes the symbolic index provably safe *)
  let r =
    analyze
      (array_prelude
     ^ {|
extern int mystery(int x);
int main() {
  initArr();
  int k = mystery(3);
  if (k >= 0 && k < 16) {
    return (int) samples[k];
  }
  return 0;
}
|})
  in
  Alcotest.(check int) "guarded index proven safe" 0 (count_violations r)

(* -- Message passing (§3.4.3) ---------------------------------------------------------------- *)

let recv_src =
  {|
int cmdSocket;
extern long recv(int socket, double *buffer, long length, int flags);
extern void sendControl(double v);

void setupComm()
/*** SafeFlow Annotation shminit assume(noncore(cmdSocket)) ***/
{
  cmdSocket = 3;
}

int main() {
  setupComm();
  double buf[4];
  recv(cmdSocket, buf, 32, 0);
  double v = buf[0];
  /*** SafeFlow Annotation assert(safe(v)) ***/
  sendControl(v);
  return 0;
}
|}

let test_recv_taints_buffer () =
  let r = analyze recv_src in
  Alcotest.(check bool) "received data unsafe" true (count_errors r >= 1)

let test_recv_monitored_safe () =
  let r =
    analyze
      {|
int cmdSocket;
extern long recv(int socket, double *buffer, long length, int flags);
extern void sendControl(double v);

void setupComm()
/*** SafeFlow Annotation shminit assume(noncore(cmdSocket)) ***/
{
  cmdSocket = 3;
}

double monitorCmd(double *buffer)
/*** SafeFlow Annotation assume(core(buffer, 0, 32)) ***/
{
  double v = buffer[0];
  if (v > 1.0 || v < -1.0) { return 0.0; }
  return v;
}

int main() {
  setupComm();
  double buf[4];
  recv(cmdSocket, buf, 32, 0);
  double v = monitorCmd(buf);
  /*** SafeFlow Annotation assert(safe(v)) ***/
  sendControl(v);
  return 0;
}
|}
  in
  Alcotest.(check int) "monitored receive is safe" 0 (count_errors r)

(* -- InitCheck ------------------------------------------------------------------------------- *)

let test_initcheck_ok () =
  let a = full (prelude ^ "int main() { initComm(); return 0; }") in
  let layout = Shm.run_init_check a.Driver.prepared.Driver.ir a.Driver.shm in
  Alcotest.(check int) "two regions laid out" 2 (List.length layout);
  let offs = List.map (fun (_, o, _) -> o) layout in
  Alcotest.(check (list int)) "offsets" [ 0; 24 ] (List.sort compare offs)

let test_initcheck_overlap_detected () =
  (* sizes claim 2 full structs but the init lays them out overlapping *)
  let src =
    {|
struct SHMData { double control; double track; double angle; };
typedef struct SHMData SHMData;
SHMData *a;
SHMData *b;
void initBad()
/*** SafeFlow Annotation shminit ***/
{
  void *base;
  int id;
  id = shmget(7200, 2 * sizeof(SHMData), 438);
  base = shmat(id, (void *) 0, 0);
  a = (SHMData *) base;
  b = (SHMData *) ((char *) base + 8);
  /*** SafeFlow Annotation
       assume(shmvar(a, sizeof(SHMData)))
       assume(shmvar(b, sizeof(SHMData))) ***/
}
int main() { initBad(); return 0; }
|}
  in
  let a = full src in
  match Shm.run_init_check a.Driver.prepared.Driver.ir a.Driver.shm with
  | exception Shm.Init_check_failed msg ->
    Alcotest.(check bool) "overlap named" true (Astring.String.is_infix ~affix:"overlap" msg)
  | _ -> Alcotest.fail "expected InitCheck failure"

(* -- Figure 2 (the paper's running example) ---------------------------------------------------- *)

let test_figure2 () =
  let a = Driver.analyze_file "../../../systems/figure2.c" in
  let r = a.Driver.report in
  Alcotest.(check int) "two regions" 2 (List.length r.Report.regions);
  Alcotest.(check int) "four warnings (feedback reads)" 4 (count_warnings r);
  Alcotest.(check int) "one data error (output)" 1 (count_errors r);
  Alcotest.(check int) "no restriction violations" 0 (count_violations r);
  (* all warnings concern the feedback region *)
  List.iter
    (fun w -> Alcotest.(check string) "warned region" "feedback" w.Report.w_region)
    r.Report.warnings;
  (* InitCheck passes *)
  let layout = Shm.run_init_check a.Driver.prepared.Driver.ir a.Driver.shm in
  Alcotest.(check int) "layout entries" 2 (List.length layout)

let test_figure2_vfg_export () =
  let a = Driver.analyze_file "../../../systems/figure2.c" in
  let dot = Vfg.to_dot a.Driver.phase3 in
  Alcotest.(check bool) "dot mentions feedback" true
    (Astring.String.is_infix ~affix:"feedback" dot);
  Alcotest.(check bool) "digraph syntax" true
    (Astring.String.is_prefix ~affix:"digraph" dot)

(* -- Phase-2 symbol namespaces ------------------------------------------------------------------- *)

(* Regression: opaque values (globals, string literals, undef) used to be
   hashed into the "v<id>" vid namespace, where they could collide with a
   real vid — or with each other — and silently alias independent solver
   variables.  They now get fresh "u<n>" symbols, memoized per value, in
   a namespace disjoint from both vids ("v<id>") and parameters
   ("p_<name>"). *)
let test_phase2_unknown_symbols () =
  let a = full (prelude ^ {|
int main() { initComm(); return 0; }
|}) in
  let f =
    List.find
      (fun (f : Ssair.Ir.func) -> f.Ssair.Ir.fname = "main")
      a.Driver.prepared.Driver.ir.Ssair.Ir.funcs
  in
  let ctx = Phase2.mk_affine_ctx f in
  let sym v =
    match Omega.Linexpr.vars (Phase2.affine_of_value ctx v) with
    | [ s ] -> s
    | _ -> Alcotest.fail "opaque value not a single symbol"
  in
  let ga = sym (Ssair.Ir.Vglobal "ga") in
  let gb = sym (Ssair.Ir.Vglobal "gb") in
  let st = sym (Ssair.Ir.Vstr "ga") in
  let un = sym (Ssair.Ir.Vundef Minic.Ty.Int) in
  let syms = [ ga; gb; st; un ] in
  Alcotest.(check int) "distinct values, distinct symbols" 4
    (List.length (List.sort_uniq compare syms));
  List.iter
    (fun s ->
      Alcotest.(check bool) ("u-namespace: " ^ s) true
        (String.length s > 1 && s.[0] = 'u'
        && int_of_string_opt (String.sub s 1 (String.length s - 1)) <> None))
    syms;
  (* memoized: the same value resolves to the same symbol *)
  Alcotest.(check string) "same global, same symbol" ga (sym (Ssair.Ir.Vglobal "ga"));
  (* disjoint from the vid and parameter namespaces *)
  (match Omega.Linexpr.vars (Phase2.affine_of_value ctx (Ssair.Ir.Vparam "x")) with
  | [ p ] -> Alcotest.(check string) "parameter namespace" "p_x" p
  | _ -> Alcotest.fail "parameter not a single symbol");
  Alcotest.(check bool) "no overlap with v<id> symbols" true
    (List.for_all (fun s -> s.[0] <> 'v') syms)

(* -- Field sensitivity ablation ------------------------------------------------------------------ *)

let test_field_sensitivity_ablation () =
  let src =
    prelude
    ^ {|
double monitor(SHMData *p)
/*** SafeFlow Annotation assume(core(nc, 0, 8)) ***/
{
  return p->control;
}
int main() { initComm(); sendControl(monitor(nc)); return 0; }
|}
  in
  let precise = analyze src in
  Alcotest.(check int) "field-sensitive: covered read" 0 (count_warnings precise);
  let config = { Config.default with field_sensitive = false } in
  let coarse = analyze ~config src in
  (* without offsets the 8-byte assumption cannot cover a Top access *)
  Alcotest.(check bool) "field-insensitive warns more" true
    (count_warnings coarse >= count_warnings precise)

let () =
  Alcotest.run "safeflow"
    [ ( "regions",
        [ Alcotest.test_case "discovery" `Quick test_regions_discovered;
          Alcotest.test_case "annotation count" `Quick test_annotation_count ] );
      ( "warnings",
        [ Alcotest.test_case "unmonitored read" `Quick test_unmonitored_read_warns;
          Alcotest.test_case "core region safe" `Quick test_core_region_read_safe;
          Alcotest.test_case "monitored read safe" `Quick test_monitored_read_safe;
          Alcotest.test_case "partial range" `Quick test_partial_monitor_range;
          Alcotest.test_case "deduplication" `Quick test_warning_deduplication ] );
      ( "contexts",
        [ Alcotest.test_case "helper monitored via caller" `Quick test_context_sensitive_helper;
          Alcotest.test_case "context-insensitive ablation" `Quick
            test_context_insensitive_ablation ] );
      ( "sinks",
        [ Alcotest.test_case "kill pid" `Quick test_kill_sink;
          Alcotest.test_case "safe kill" `Quick test_safe_kill_no_error ] );
      ( "control-deps",
        [ Alcotest.test_case "control-only" `Quick test_control_only_dependency;
          Alcotest.test_case "ablation off" `Quick test_control_deps_ablation;
          Alcotest.test_case "data beats control" `Quick test_data_beats_control ] );
      ( "restrictions",
        [ Alcotest.test_case "P2 store" `Quick test_p2_store_of_shm_pointer;
          Alcotest.test_case "P3 int cast" `Quick test_p3_cast_to_int;
          Alcotest.test_case "P3 incompatible" `Quick test_p3_incompatible_cast;
          Alcotest.test_case "P1 outside main" `Quick test_p1_dealloc_outside_main;
          Alcotest.test_case "P1 end of main ok" `Quick test_p1_ok_at_end_of_main;
          Alcotest.test_case "P1 use after dealloc" `Quick test_p1_dealloc_then_use;
          Alcotest.test_case "init exempt" `Quick test_init_function_exempt ] );
      ( "arrays",
        [ Alcotest.test_case "in-bounds loop" `Quick test_a1_in_bounds_loop;
          Alcotest.test_case "off-by-one" `Quick test_a1_off_by_one;
          Alcotest.test_case "constant oob" `Quick test_a1_constant_oob;
          Alcotest.test_case "negative start" `Quick test_a1_negative_start;
          Alcotest.test_case "affine transform" `Quick test_a2_affine_transform;
          Alcotest.test_case "non-affine" `Quick test_a2_non_affine;
          Alcotest.test_case "guarded symbolic" `Quick test_a2_guarded_symbolic_index ] );
      ( "message-passing",
        [ Alcotest.test_case "recv taints" `Quick test_recv_taints_buffer;
          Alcotest.test_case "monitored recv" `Quick test_recv_monitored_safe ] );
      ( "initcheck",
        [ Alcotest.test_case "ok" `Quick test_initcheck_ok;
          Alcotest.test_case "overlap" `Quick test_initcheck_overlap_detected ] );
      ( "figure2",
        [ Alcotest.test_case "report" `Quick test_figure2;
          Alcotest.test_case "vfg export" `Quick test_figure2_vfg_export ] );
      ( "phase2 internals",
        [ Alcotest.test_case "unknown-symbol namespace" `Quick
            test_phase2_unknown_symbols ] );
      ( "ablations",
        [ Alcotest.test_case "field sensitivity" `Quick test_field_sensitivity_ablation ] ) ]
